//! The Costas Array Problem modelled for Adaptive Search (paper §IV).
//!
//! * Configuration: a permutation of `1..=n` (implicit `alldifferent`).
//! * Cost: repeated values in the rows of the difference triangle, weighted by
//!   `ERR(d)` and restricted to the Chang half-triangle in the optimised model —
//!   provided by [`costas::ConflictTable`].
//! * Custom reset (§IV-B): when the engine hits a local minimum it asks the model to
//!   propose a perturbed configuration.  Three perturbation families are tried:
//!
//!   1. circular shifts (left and right by one cell) of every sub-array starting or
//!      ending at the most erroneous variable `V_m`;
//!   2. adding a constant circularly (mod `n`) to every variable, with constants
//!      `1, 2, n−2, n−3`;
//!   3. left-shifting by one cell the prefix ending at a randomly chosen erroneous
//!      variable other than `V_m` (at most three candidates tried).
//!
//!   As soon as a perturbation is *strictly better* than the entry configuration it is
//!   adopted (the paper reports this succeeds in ≈32 % of resets, independent of `n`);
//!   otherwise all candidates are evaluated and the best one is adopted.

use costas::{ConflictTable, CostModel};
use xrand::{RandExt, Rng64};

use crate::problem::PermutationProblem;

/// Configuration of the CAP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostasModelConfig {
    /// Scoring model (error weighting and row span).
    pub cost_model: CostModel,
    /// Enable the dedicated three-perturbation reset procedure.  When `false` the
    /// model always defers to the engine's generic reset — this is the knob the
    /// ablation bench uses to measure the paper's "≈3.7× from the dedicated reset".
    pub dedicated_reset: bool,
    /// How many erroneous variables the third perturbation family samples.
    pub prefix_shift_candidates: usize,
    /// Keep the width-generic bitmask probe kernel enabled (the default).
    /// When `false` the conflict table drops its occupancy bitmasks and every
    /// probe takes the generic histogram path — the knob the large-n benches
    /// use to measure the kernel against its own pre-kernel baseline on the
    /// same build.  Solvers have no reason to turn this off.
    pub accelerated_probe: bool,
}

impl Default for CostasModelConfig {
    fn default() -> Self {
        Self {
            cost_model: CostModel::optimized(),
            dedicated_reset: true,
            prefix_shift_candidates: 3,
            accelerated_probe: true,
        }
    }
}

impl CostasModelConfig {
    /// The paper's basic model: `ERR(d) = 1`, full triangle, generic reset.
    pub fn basic() -> Self {
        Self {
            cost_model: CostModel::basic(),
            dedicated_reset: false,
            prefix_shift_candidates: 3,
            accelerated_probe: true,
        }
    }

    /// The paper's fully optimised model (default).
    pub fn optimized() -> Self {
        Self::default()
    }
}

/// The CAP as a [`PermutationProblem`].
#[derive(Debug, Clone)]
pub struct CostasProblem {
    table: ConflictTable,
    config: CostasModelConfig,
    // scratch buffers for the reset procedure
    scratch: Vec<usize>,
    best_candidate: Vec<usize>,
    cost_scratch: Vec<u32>,
    chain_a: Vec<usize>,
    chain_b: Vec<usize>,
    erroneous: Vec<usize>,
}

impl CostasProblem {
    /// CAP of order `n` with the optimised model.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, CostasModelConfig::default())
    }

    /// CAP of order `n` with an explicit model configuration.
    pub fn with_config(n: usize, config: CostasModelConfig) -> Self {
        assert!(n > 0, "Costas order must be positive");
        let identity: Vec<usize> = (1..=n).collect();
        let mut table = ConflictTable::new(&identity, config.cost_model);
        if !config.accelerated_probe {
            table.disable_probe_kernel();
        }
        Self {
            table,
            config,
            scratch: vec![0; n],
            best_candidate: vec![0; n],
            cost_scratch: Vec::with_capacity(2 * n),
            chain_a: vec![0; n],
            chain_b: vec![0; n],
            erroneous: Vec::with_capacity(n),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &CostasModelConfig {
        &self.config
    }

    /// Order of the instance.
    pub fn order(&self) -> usize {
        self.table.order()
    }

    /// Evaluate one candidate: adopt it immediately if strictly better than
    /// `entry_cost`, otherwise remember it if it beats (or, with a coin flip, ties)
    /// the best candidate so far.  Returns `true` when the candidate was adopted
    /// (early escape).
    ///
    /// The evaluation is *bounded*: a candidate only matters below `entry_cost`
    /// (immediate adoption) or at/below `best_cost` (best-so-far tracking, ties
    /// included), so the sweep aborts — through the reusable histogram scratch,
    /// allocation-free — as soon as its partial cost provably exceeds both
    /// thresholds.  An aborted candidate takes none of the branches below
    /// (including the tie coin flip), so the observable behaviour, random stream
    /// included, is identical to a full evaluation.
    fn consider_candidate(
        &mut self,
        candidate: &[usize],
        entry_cost: u64,
        best_cost: &mut u64,
        rng: &mut dyn Rng64,
    ) -> bool {
        let model = *self.table.model();
        let limit = entry_cost.saturating_sub(1).max(*best_cost);
        let cost = match model.global_cost_bounded(candidate, limit, &mut self.cost_scratch) {
            Some(cost) => cost,
            None => return false, // provably > limit: neither adopted nor best
        };
        if cost < entry_cost {
            self.table.reset_to(candidate);
            return true;
        }
        // Ties are broken stochastically so repeated resets from similar
        // configurations do not always pick the same perturbation.
        let replace = cost < *best_cost || (cost == *best_cost && rng.next_u64() & 1 == 0);
        if replace {
            *best_cost = cost;
            self.best_candidate.copy_from_slice(candidate);
        }
        false
    }

    /// Perturbation family 1: circular shifts of sub-arrays anchored at `m`.
    ///
    /// The candidates are evaluated in the fixed order the paper lists them —
    /// sub-arrays `[m..=hi]` for increasing `hi`, then `[lo..=m]` for increasing
    /// `lo`, left rotation before right rotation — but each candidate buffer is
    /// *advanced* instead of rebuilt: consecutive rotations of nested ranges
    /// differ by exactly one transposition
    /// (`rotl [m..=hi+1] = swap(hi, hi+1) ∘ rotl [m..=hi]`,
    /// `rotr [m..=hi+1] = swap(m, hi+1) ∘ rotr [m..=hi]`,
    /// `rotl [lo+1..=m] = swap(lo, m) ∘ rotl [lo..=m]`,
    /// `rotr [lo+1..=m] = swap(lo, lo+1) ∘ rotr [lo..=m]`),
    /// so producing each of the ≈ 2n candidates is O(1) instead of O(n).
    /// Returns `true` on early escape.
    fn try_anchored_shifts(
        &mut self,
        m: usize,
        entry_cost: u64,
        best_cost: &mut u64,
        rng: &mut dyn Rng64,
    ) -> bool {
        let n = self.order();
        let mut left_chain = std::mem::take(&mut self.chain_a);
        let mut right_chain = std::mem::take(&mut self.chain_b);
        let mut escaped = false;
        'outer: {
            // Sub-arrays [m..=hi] for hi ascending.
            left_chain.copy_from_slice(self.table.values());
            right_chain.copy_from_slice(self.table.values());
            for hi in (m + 1)..n {
                if hi == m + 1 {
                    // both rotations of a two-element range are the same swap
                    left_chain.swap(m, m + 1);
                    right_chain.swap(m, m + 1);
                } else {
                    left_chain.swap(hi - 1, hi);
                    right_chain.swap(m, hi);
                }
                if self.consider_candidate(&left_chain, entry_cost, best_cost, rng)
                    || self.consider_candidate(&right_chain, entry_cost, best_cost, rng)
                {
                    escaped = true;
                    break 'outer;
                }
            }
            // Sub-arrays [lo..=m] for lo ascending.
            if m >= 1 {
                left_chain.copy_from_slice(self.table.values());
                left_chain[0..=m].rotate_left(1);
                right_chain.copy_from_slice(self.table.values());
                right_chain[0..=m].rotate_right(1);
                for lo in 0..m {
                    if lo > 0 {
                        left_chain.swap(lo - 1, m);
                        right_chain.swap(lo - 1, lo);
                    }
                    if self.consider_candidate(&left_chain, entry_cost, best_cost, rng)
                        || self.consider_candidate(&right_chain, entry_cost, best_cost, rng)
                    {
                        escaped = true;
                        break 'outer;
                    }
                }
            }
        }
        self.chain_a = left_chain;
        self.chain_b = right_chain;
        escaped
    }

    /// Perturbation family 2: add a constant circularly (mod `n`) to every value.
    fn try_constant_additions(
        &mut self,
        entry_cost: u64,
        best_cost: &mut u64,
        rng: &mut dyn Rng64,
    ) -> bool {
        let n = self.order();
        let mut scratch = std::mem::take(&mut self.scratch);
        // the historical constant sequence: 1, 2, n−2, n−3 (n ≥ 4 only for the
        // last), multiples of n dropped, *consecutive* duplicates collapsed —
        // kept verbatim so trajectories are unchanged, allocation aside
        let mut raw = [1, 2, n - 2, 0usize];
        let mut raw_len = 3;
        if n >= 4 {
            raw[3] = n - 3;
            raw_len = 4;
        }
        let mut constants = [0usize; 4];
        let mut num_constants = 0;
        for &c in &raw[..raw_len] {
            if c % n != 0 && (num_constants == 0 || constants[num_constants - 1] != c) {
                constants[num_constants] = c;
                num_constants += 1;
            }
        }
        let mut escaped = false;
        for &c in &constants[..num_constants] {
            // the table's values are unchanged until a candidate is adopted, at
            // which point the loop exits — so re-reading them per constant is safe
            for (dst, &src) in scratch.iter_mut().zip(self.table.values()) {
                *dst = (src - 1 + c) % n + 1;
            }
            if self.consider_candidate(&scratch, entry_cost, best_cost, rng) {
                escaped = true;
                break;
            }
        }
        self.scratch = scratch;
        escaped
    }

    /// Perturbation family 3: left-shift the prefix ending at a random erroneous
    /// variable different from `m`.
    fn try_prefix_shifts(
        &mut self,
        m: usize,
        entry_cost: u64,
        best_cost: &mut u64,
        rng: &mut dyn Rng64,
    ) -> bool {
        // the maintained per-position error vector — no recompute, no sweep
        let mut erroneous = std::mem::take(&mut self.erroneous);
        erroneous.clear();
        erroneous.extend(
            self.table
                .errors()
                .iter()
                .enumerate()
                .filter(|&(i, &e)| e > 0 && i != m)
                .map(|(i, _)| i),
        );
        if erroneous.is_empty() {
            self.erroneous = erroneous;
            return false;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let tries = self.config.prefix_shift_candidates.min(erroneous.len());
        let mut escaped = false;
        for _ in 0..tries {
            let pick = erroneous[rng.index(erroneous.len())];
            if pick == 0 {
                continue; // a prefix of length one cannot be shifted
            }
            // values are unchanged until a candidate is adopted (which exits)
            scratch.copy_from_slice(self.table.values());
            scratch[0..=pick].rotate_left(1);
            if self.consider_candidate(&scratch, entry_cost, best_cost, rng) {
                escaped = true;
                break;
            }
        }
        self.scratch = scratch;
        self.erroneous = erroneous;
        escaped
    }
}

impl PermutationProblem for CostasProblem {
    fn size(&self) -> usize {
        self.table.order()
    }

    fn set_configuration(&mut self, values: &[usize]) {
        self.table.reset_to(values);
    }

    fn configuration(&self) -> &[usize] {
        self.table.values()
    }

    fn global_cost(&self) -> u64 {
        self.table.cost()
    }

    fn variable_errors(&self, out: &mut Vec<u64>) {
        self.table.variable_errors(out);
    }

    fn cached_errors(&self) -> Option<&[u64]> {
        Some(self.table.errors())
    }

    fn delta_for_swap(&self, i: usize, j: usize) -> i64 {
        self.table.delta_for_swap(i, j)
    }

    fn probe_partners(&self, culprit: usize, out: &mut Vec<u64>) {
        self.table.probe_partners(culprit, out);
    }

    fn probe_partners_reference(&self, culprit: usize, out: &mut Vec<u64>) {
        self.table.probe_partners_reference(culprit, out);
    }

    fn has_accelerated_probe(&self) -> bool {
        self.table.has_probe_kernel()
    }

    fn apply_swap(&mut self, i: usize, j: usize) {
        self.table.apply_swap(i, j);
    }

    fn custom_reset(&mut self, worst_var: usize, rng: &mut dyn Rng64) -> Option<u64> {
        if !self.config.dedicated_reset || self.order() < 3 {
            return None;
        }
        let entry_cost = self.table.cost();
        let mut best_cost = u64::MAX;
        self.best_candidate.copy_from_slice(self.table.values());

        let escaped = self.try_anchored_shifts(worst_var, entry_cost, &mut best_cost, rng)
            || self.try_constant_additions(entry_cost, &mut best_cost, rng)
            || self.try_prefix_shifts(worst_var, entry_cost, &mut best_cost, rng);

        if !escaped {
            // No perturbation beat the entry configuration: adopt the best one anyway
            // (the paper: "all perturbations are tested exhaustively and the best is
            // selected").
            let best = self.best_candidate.clone();
            self.table.reset_to(&best);
        }
        Some(self.table.cost())
    }

    fn name(&self) -> &'static str {
        "costas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costas::Permutation;
    use xrand::default_rng;

    fn random_config(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = default_rng(seed);
        let mut p = xrand::random_permutation(n, &mut rng);
        p.iter_mut().for_each(|v| *v += 1);
        p
    }

    #[test]
    fn problem_implements_the_trait_consistently() {
        let mut p = CostasProblem::new(10);
        let config = random_config(10, 3);
        p.set_configuration(&config);
        assert_eq!(p.size(), 10);
        assert_eq!(p.configuration(), &config[..]);
        assert_eq!(p.global_cost(), CostModel::optimized().global_cost(&config));
        let mut errs = Vec::new();
        p.variable_errors(&mut errs);
        assert_eq!(errs.len(), 10);
        let before = p.global_cost();
        let predicted = p.cost_after_swap(0, 5);
        assert_eq!(p.global_cost(), before, "prediction must not mutate");
        p.apply_swap(0, 5);
        assert_eq!(p.global_cost(), predicted);
    }

    #[test]
    fn custom_reset_preserves_permutation_and_returns_cost() {
        let mut rng = default_rng(11);
        for n in [5usize, 9, 14, 19] {
            let mut p = CostasProblem::new(n);
            for seed in 0..10u64 {
                let config = random_config(n, seed * 31 + n as u64);
                p.set_configuration(&config);
                let mut errs = Vec::new();
                p.variable_errors(&mut errs);
                let worst = errs
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, e)| *e)
                    .map(|(i, _)| i)
                    .unwrap();
                let reported = p
                    .custom_reset(worst, &mut rng)
                    .expect("dedicated reset enabled");
                assert!(Permutation::validate(p.configuration()).is_ok(), "n={n}");
                assert_eq!(reported, p.global_cost());
                assert_eq!(
                    reported,
                    CostModel::optimized().global_cost(p.configuration())
                );
            }
        }
    }

    #[test]
    fn custom_reset_changes_the_configuration_when_stuck() {
        // From a random (almost surely conflicted) configuration the reset should move
        // to a different configuration in the vast majority of cases.
        let mut rng = default_rng(5);
        let mut p = CostasProblem::new(13);
        let mut changed = 0;
        for seed in 0..20u64 {
            let config = random_config(13, seed);
            p.set_configuration(&config);
            p.custom_reset(0, &mut rng);
            if p.configuration() != &config[..] {
                changed += 1;
            }
        }
        assert!(
            changed >= 15,
            "reset changed the configuration only {changed}/20 times"
        );
    }

    #[test]
    fn custom_reset_often_escapes_strictly() {
        // The paper reports ≈32 % immediate escapes; accept anything well above zero.
        let mut rng = default_rng(17);
        let mut p = CostasProblem::new(17);
        let mut escapes = 0;
        let trials = 200;
        for seed in 0..trials {
            let config = random_config(17, seed as u64 + 1000);
            p.set_configuration(&config);
            let entry = p.global_cost();
            let after = p.custom_reset(0, &mut rng).unwrap();
            if after < entry {
                escapes += 1;
            }
        }
        assert!(
            escapes * 10 >= trials,
            "expected ≥10% strict escapes from random configurations, got {escapes}/{trials}"
        );
    }

    #[test]
    fn rotation_chain_identities_hold() {
        // The transposition identities try_anchored_shifts advances its candidate
        // buffers by, checked against materialised rotations.
        for n in [2usize, 3, 5, 8, 13] {
            let base = random_config(n, 41 + n as u64);
            for m in 0..n {
                let mut left = base.clone();
                let mut right = base.clone();
                for hi in (m + 1)..n {
                    if hi == m + 1 {
                        left.swap(m, m + 1);
                        right.swap(m, m + 1);
                    } else {
                        left.swap(hi - 1, hi);
                        right.swap(m, hi);
                    }
                    let mut expect = base.clone();
                    expect[m..=hi].rotate_left(1);
                    assert_eq!(left, expect, "rotl [{m}..={hi}] of order {n}");
                    let mut expect = base.clone();
                    expect[m..=hi].rotate_right(1);
                    assert_eq!(right, expect, "rotr [{m}..={hi}] of order {n}");
                }
                if m >= 1 {
                    let mut left = base.clone();
                    left[0..=m].rotate_left(1);
                    let mut right = base.clone();
                    right[0..=m].rotate_right(1);
                    for lo in 0..m {
                        if lo > 0 {
                            left.swap(lo - 1, m);
                            right.swap(lo - 1, lo);
                        }
                        let mut expect = base.clone();
                        expect[lo..=m].rotate_left(1);
                        assert_eq!(left, expect, "rotl [{lo}..={m}] of order {n}");
                        let mut expect = base.clone();
                        expect[lo..=m].rotate_right(1);
                        assert_eq!(right, expect, "rotr [{lo}..={m}] of order {n}");
                    }
                }
            }
        }
    }

    #[test]
    fn custom_reset_lands_in_the_legal_perturbation_set() {
        // Whatever the reset procedure adopts must be one of the paper's
        // perturbations of the entry configuration: an anchored sub-array
        // rotation, a circular constant addition, or a prefix left-shift.
        let mut rng = default_rng(23);
        for n in [5usize, 9, 13] {
            let mut p = CostasProblem::new(n);
            for seed in 0..30u64 {
                let entry = random_config(n, seed * 131 + n as u64);
                p.set_configuration(&entry);
                let mut errs = Vec::new();
                p.variable_errors(&mut errs);
                let m = errs
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, e)| *e)
                    .map(|(i, _)| i)
                    .unwrap();
                let mut legal: Vec<Vec<usize>> = Vec::new();
                for hi in (m + 1)..n {
                    for right in [false, true] {
                        let mut c = entry.clone();
                        if right {
                            c[m..=hi].rotate_right(1);
                        } else {
                            c[m..=hi].rotate_left(1);
                        }
                        legal.push(c);
                    }
                }
                for lo in 0..m {
                    for right in [false, true] {
                        let mut c = entry.clone();
                        if right {
                            c[lo..=m].rotate_right(1);
                        } else {
                            c[lo..=m].rotate_left(1);
                        }
                        legal.push(c);
                    }
                }
                for add in 1..n {
                    let c: Vec<usize> = entry.iter().map(|&v| (v - 1 + add) % n + 1).collect();
                    legal.push(c);
                }
                for pick in 1..n {
                    let mut c = entry.clone();
                    c[0..=pick].rotate_left(1);
                    legal.push(c);
                }
                let reported = p.custom_reset(m, &mut rng).expect("dedicated reset");
                assert!(
                    legal.iter().any(|c| c == p.configuration()),
                    "n={n} seed={seed}: reset landed outside the perturbation set"
                );
                assert_eq!(reported, p.global_cost());
            }
        }
    }

    #[test]
    fn disabled_dedicated_reset_defers_to_engine() {
        let mut p = CostasProblem::with_config(
            12,
            CostasModelConfig {
                dedicated_reset: false,
                ..Default::default()
            },
        );
        let mut rng = default_rng(0);
        p.set_configuration(&random_config(12, 9));
        assert_eq!(p.custom_reset(0, &mut rng), None);
    }

    #[test]
    fn basic_and_optimized_models_agree_on_solutions() {
        let solution = [3usize, 4, 2, 1, 5];
        let mut basic = CostasProblem::with_config(5, CostasModelConfig::basic());
        let mut opt = CostasProblem::new(5);
        basic.set_configuration(&solution);
        opt.set_configuration(&solution);
        assert_eq!(basic.global_cost(), 0);
        assert_eq!(opt.global_cost(), 0);
        assert!(basic.is_solution() && opt.is_solution());
    }

    #[test]
    fn accelerated_probe_flag_gates_the_kernel_and_preserves_results() {
        // Orders on both sides of the single-word boundary: with the flag off
        // the probe advertises no kernel, with it on it does, and the two
        // configurations score every candidate identically.
        for n in [18usize, 34, 40] {
            let mut fast = CostasProblem::new(n);
            let mut generic = CostasProblem::with_config(
                n,
                CostasModelConfig {
                    accelerated_probe: false,
                    ..Default::default()
                },
            );
            assert!(fast.has_accelerated_probe(), "n={n}");
            assert!(!generic.has_accelerated_probe(), "n={n}");
            let config = random_config(n, 77 + n as u64);
            fast.set_configuration(&config);
            generic.set_configuration(&config);
            // the flag must survive resets
            assert!(!generic.has_accelerated_probe(), "n={n} after reset");
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for culprit in 0..n {
                fast.probe_partners(culprit, &mut a);
                generic.probe_partners(culprit, &mut b);
                assert_eq!(a, b, "n={n} culprit={culprit}");
            }
        }
    }

    #[test]
    fn tiny_orders_skip_the_dedicated_reset() {
        let mut p = CostasProblem::new(2);
        let mut rng = default_rng(1);
        p.set_configuration(&[1, 2]);
        assert_eq!(p.custom_reset(0, &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_order_rejected() {
        CostasProblem::new(0);
    }
}
