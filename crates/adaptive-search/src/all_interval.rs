//! The All-Interval Series problem (CSPLib prob007) for Adaptive Search.
//!
//! The paper introduces the CAP as "conceptually related to three well-known CSPs",
//! one of which is the All-Interval Series problem: arrange the `n` pitch classes
//! `1..=n` so that the `n − 1` absolute differences between adjacent elements are all
//! distinct (hence a permutation of `1..=n−1`).  It is the one-row cousin of the
//! Costas difference triangle, and having it in the workspace both demonstrates the
//! engine's domain independence and provides a structurally close but much easier
//! benchmark for comparisons.
//!
//! Cost model: the number of *missing* distinct adjacent differences, i.e.
//! `(n − 1) − |{ |v[i+1] − v[i]| }|`; equivalently the count of repeated differences.

use crate::problem::PermutationProblem;

/// All-Interval Series with an incremental histogram of adjacent differences.
#[derive(Debug, Clone)]
pub struct AllIntervalProblem {
    values: Vec<usize>,
    /// `diff_count[d]` = number of adjacent pairs with |difference| = d (1-based).
    diff_count: Vec<u32>,
    cost: u64,
}

impl AllIntervalProblem {
    /// Create an instance of order `n` initialised with the identity permutation.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "All-Interval order must be positive");
        let mut p = Self {
            values: (1..=n).collect(),
            diff_count: vec![0; n],
            cost: 0,
        };
        p.rebuild();
        p
    }

    fn n(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn adjacent_diff(&self, left: usize) -> usize {
        self.values[left].abs_diff(self.values[left + 1])
    }

    fn rebuild(&mut self) {
        self.diff_count.iter_mut().for_each(|c| *c = 0);
        self.cost = 0;
        for left in 0..self.n().saturating_sub(1) {
            let d = self.adjacent_diff(left);
            if self.diff_count[d] > 0 {
                self.cost += 1;
            }
            self.diff_count[d] += 1;
        }
    }

    fn remove_edge(&mut self, left: usize) {
        let d = self.adjacent_diff(left);
        self.diff_count[d] -= 1;
        if self.diff_count[d] > 0 {
            self.cost -= 1;
        }
    }

    fn add_edge(&mut self, left: usize) {
        let d = self.adjacent_diff(left);
        if self.diff_count[d] > 0 {
            self.cost += 1;
        }
        self.diff_count[d] += 1;
    }

    /// Edges (left indices of adjacent pairs) affected by changing positions i and j.
    fn affected_edges(&self, i: usize, j: usize) -> Vec<usize> {
        let mut edges = Vec::with_capacity(4);
        for &p in &[i, j] {
            if p > 0 {
                edges.push(p - 1);
            }
            if p + 1 < self.n() {
                edges.push(p);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Reference O(n) cost used by tests.
    #[cfg(test)]
    fn cost_from_scratch(values: &[usize]) -> u64 {
        let n = values.len();
        let mut seen = vec![0u32; n];
        let mut cost = 0;
        for i in 0..n.saturating_sub(1) {
            let d = values[i].abs_diff(values[i + 1]);
            if seen[d] > 0 {
                cost += 1;
            }
            seen[d] += 1;
        }
        cost
    }
}

impl PermutationProblem for AllIntervalProblem {
    fn size(&self) -> usize {
        self.n()
    }

    fn set_configuration(&mut self, values: &[usize]) {
        self.values = values.to_vec();
        self.rebuild();
    }

    fn configuration(&self) -> &[usize] {
        &self.values
    }

    fn global_cost(&self) -> u64 {
        self.cost
    }

    fn variable_errors(&self, out: &mut Vec<u64>) {
        let n = self.n();
        out.clear();
        out.resize(n, 0);
        for left in 0..n.saturating_sub(1) {
            let d = self.adjacent_diff(left);
            // every extra occupant of a difference class is an error charged to both
            // endpoints of the pair
            if self.diff_count[d] > 1 {
                out[left] += 1;
                out[left + 1] += 1;
            }
        }
    }

    fn cost_after_swap(&mut self, i: usize, j: usize) -> u64 {
        if i == j {
            return self.cost;
        }
        self.apply_swap(i, j);
        let c = self.cost;
        self.apply_swap(i, j);
        c
    }

    fn apply_swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let edges = self.affected_edges(i, j);
        for &e in &edges {
            self.remove_edge(e);
        }
        self.values.swap(i, j);
        for &e in &edges {
            self.add_edge(e);
        }
    }

    fn name(&self) -> &'static str {
        "all-interval"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AsConfig;
    use crate::engine::Engine;
    use xrand::{default_rng, random_permutation, RandExt};

    #[test]
    fn known_solution_has_zero_cost() {
        // The zig-zag series 1, n, 2, n-1, ... is a classical all-interval series.
        let n = 8;
        let mut zigzag = Vec::new();
        let (mut lo, mut hi) = (1, n);
        while lo <= hi {
            zigzag.push(lo);
            if lo != hi {
                zigzag.push(hi);
            }
            lo += 1;
            hi -= 1;
        }
        let mut p = AllIntervalProblem::new(n);
        p.set_configuration(&zigzag);
        assert_eq!(p.global_cost(), 0, "{zigzag:?}");
    }

    #[test]
    fn identity_has_all_equal_intervals() {
        let p = AllIntervalProblem::new(6);
        // identity: 5 adjacent differences all equal to 1 → 4 repeats
        assert_eq!(p.global_cost(), 4);
    }

    #[test]
    fn incremental_cost_matches_scratch_under_random_swaps() {
        let mut rng = default_rng(4);
        for n in [2usize, 3, 5, 12, 24] {
            let mut init = random_permutation(n, &mut rng);
            init.iter_mut().for_each(|v| *v += 1);
            let mut p = AllIntervalProblem::new(n);
            p.set_configuration(&init);
            for _ in 0..200 {
                let i = rng.index(n);
                let j = rng.index(n);
                p.apply_swap(i, j);
                assert_eq!(
                    p.global_cost(),
                    AllIntervalProblem::cost_from_scratch(p.configuration()),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn cost_after_swap_is_pure() {
        let mut p = AllIntervalProblem::new(10);
        let before = p.configuration().to_vec();
        let cost_before = p.global_cost();
        let _ = p.cost_after_swap(2, 7);
        assert_eq!(p.configuration(), &before[..]);
        assert_eq!(p.global_cost(), cost_before);
    }

    #[test]
    fn adaptive_search_solves_all_interval() {
        for n in [8usize, 12, 14] {
            let cfg = AsConfig::builder().use_custom_reset(false).build();
            let mut engine = Engine::new(AllIntervalProblem::new(n), cfg, 77 + n as u64);
            let r = engine.solve();
            assert!(r.is_solved(), "n = {n}");
            assert_eq!(
                AllIntervalProblem::cost_from_scratch(&r.solution.unwrap()),
                0
            );
        }
    }

    #[test]
    fn variable_errors_are_zero_exactly_on_solutions() {
        let mut p = AllIntervalProblem::new(8);
        p.set_configuration(&[1, 8, 2, 7, 3, 6, 4, 5]);
        let mut errs = Vec::new();
        p.variable_errors(&mut errs);
        assert!(errs.iter().all(|&e| e == 0));
        p.set_configuration(&[1, 2, 3, 4, 5, 6, 7, 8]);
        p.variable_errors(&mut errs);
        assert!(errs.iter().sum::<u64>() > 0);
    }
}
