//! The All-Interval Series problem (CSPLib prob007) for Adaptive Search.
//!
//! The paper introduces the CAP as "conceptually related to three well-known CSPs",
//! one of which is the All-Interval Series problem: arrange the `n` pitch classes
//! `1..=n` so that the `n − 1` absolute differences between adjacent elements are all
//! distinct (hence a permutation of `1..=n−1`).  It is the one-row cousin of the
//! Costas difference triangle, and having it in the workspace both demonstrates the
//! engine's domain independence and provides a structurally close but much easier
//! benchmark for comparisons.
//!
//! Cost model: the number of *missing* distinct adjacent differences, i.e.
//! `(n − 1) − |{ |v[i+1] − v[i]| }|`; equivalently the count of repeated differences.

use costas::BucketMerge;

use crate::problem::PermutationProblem;

/// All-Interval Series with an incremental histogram of adjacent differences.
#[derive(Debug, Clone)]
pub struct AllIntervalProblem {
    values: Vec<usize>,
    /// `diff_count[d]` = number of adjacent pairs with |difference| = d (1-based).
    diff_count: Vec<u32>,
    cost: u64,
    /// Maintained per-position errors: every edge of an over-occupied difference
    /// class charges both of its endpoints.
    errors: Vec<u64>,
    /// Sum of the left indices of the edges currently in each difference class.
    ///
    /// The error updates only ever need to *identify* a class member when the
    /// class holds exactly one other edge (occupancy crossing 1 ↔ 2), and that
    /// member is recoverable from the sum alone — no member lists needed.
    class_left_sum: Vec<u64>,
}

impl AllIntervalProblem {
    /// Create an instance of order `n` initialised with the identity permutation.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "All-Interval order must be positive");
        let mut p = Self {
            values: (1..=n).collect(),
            diff_count: vec![0; n],
            cost: 0,
            errors: vec![0; n],
            class_left_sum: vec![0; n],
        };
        p.rebuild();
        p
    }

    fn n(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn adjacent_diff(&self, left: usize) -> usize {
        self.values[left].abs_diff(self.values[left + 1])
    }

    fn rebuild(&mut self) {
        self.diff_count.iter_mut().for_each(|c| *c = 0);
        self.class_left_sum.iter_mut().for_each(|s| *s = 0);
        self.errors.iter_mut().for_each(|e| *e = 0);
        self.cost = 0;
        for left in 0..self.n().saturating_sub(1) {
            let d = self.adjacent_diff(left);
            if self.diff_count[d] > 0 {
                self.cost += 1;
            }
            self.diff_count[d] += 1;
            self.class_left_sum[d] += left as u64;
        }
        for left in 0..self.n().saturating_sub(1) {
            let d = self.adjacent_diff(left);
            if self.diff_count[d] > 1 {
                self.errors[left] += 1;
                self.errors[left + 1] += 1;
            }
        }
    }

    fn remove_edge(&mut self, left: usize) {
        let d = self.adjacent_diff(left);
        let c = self.diff_count[d];
        self.diff_count[d] = c - 1;
        self.class_left_sum[d] -= left as u64;
        if c > 1 {
            self.cost -= 1;
            // the removed edge was in an over-occupied class: uncharge it
            self.errors[left] -= 1;
            self.errors[left + 1] -= 1;
            if c == 2 {
                // the class drops to a single edge, which stops being charged;
                // the left-sum is exactly that remaining edge now
                let other = self.class_left_sum[d] as usize;
                self.errors[other] -= 1;
                self.errors[other + 1] -= 1;
            }
        }
    }

    fn add_edge(&mut self, left: usize) {
        let d = self.adjacent_diff(left);
        let c = self.diff_count[d];
        if c > 0 {
            self.cost += 1;
            self.errors[left] += 1;
            self.errors[left + 1] += 1;
            if c == 1 {
                // the class crosses into over-occupancy: the edge that was alone
                // in it (identified by the left-sum) becomes charged too
                let other = self.class_left_sum[d] as usize;
                self.errors[other] += 1;
                self.errors[other + 1] += 1;
            }
        }
        self.diff_count[d] = c + 1;
        self.class_left_sum[d] += left as u64;
    }

    /// Debug helper: does the maintained error vector match a recompute from the
    /// current configuration?
    fn errors_consistency_check(&self) -> bool {
        let n = self.n();
        let mut expected = vec![0u64; n];
        for left in 0..n.saturating_sub(1) {
            let d = self.adjacent_diff(left);
            if self.diff_count[d] > 1 {
                expected[left] += 1;
                expected[left + 1] += 1;
            }
        }
        expected == self.errors
    }

    /// Edges (left indices of adjacent pairs) affected by changing positions i and
    /// j: at most 4 distinct, returned in a fixed-size buffer so neither the probe
    /// nor the apply path allocates.
    fn affected_edges(&self, i: usize, j: usize) -> ([usize; 4], usize) {
        let mut edges = [0usize; 4];
        let mut len = 0usize;
        for &p in &[i, j] {
            for e in [p.checked_sub(1), (p + 1 < self.n()).then_some(p)]
                .into_iter()
                .flatten()
            {
                if !edges[..len].contains(&e) {
                    edges[len] = e;
                    len += 1;
                }
            }
        }
        (edges, len)
    }

    /// Value at position `p` once positions `i` and `j` are swapped, without
    /// performing the swap.
    #[inline]
    fn value_after_swap(&self, p: usize, i: usize, j: usize) -> usize {
        let q = if p == i {
            j
        } else if p == j {
            i
        } else {
            p
        };
        self.values[q]
    }

    /// Reference O(n) cost used by tests.
    #[cfg(test)]
    fn cost_from_scratch(values: &[usize]) -> u64 {
        let n = values.len();
        let mut seen = vec![0u32; n];
        let mut cost = 0;
        for i in 0..n.saturating_sub(1) {
            let d = values[i].abs_diff(values[i + 1]);
            if seen[d] > 0 {
                cost += 1;
            }
            seen[d] += 1;
        }
        cost
    }
}

impl PermutationProblem for AllIntervalProblem {
    fn size(&self) -> usize {
        self.n()
    }

    fn set_configuration(&mut self, values: &[usize]) {
        self.values = values.to_vec();
        self.rebuild();
    }

    fn configuration(&self) -> &[usize] {
        &self.values
    }

    fn global_cost(&self) -> u64 {
        self.cost
    }

    fn variable_errors(&self, out: &mut Vec<u64>) {
        // every extra occupant of a difference class is an error charged to both
        // endpoints of the pair; the vector is maintained across swaps
        out.clear();
        out.extend_from_slice(&self.errors);
    }

    fn cached_errors(&self) -> Option<&[u64]> {
        Some(&self.errors)
    }

    /// O(1): a swap only changes the ≤ 4 adjacent differences whose edges touch
    /// `i` or `j`; their old/new difference classes are merged per class and scored
    /// against the histogram without touching it.
    fn delta_for_swap(&self, i: usize, j: usize) -> i64 {
        if i == j {
            return 0;
        }
        let (edges, edge_count) = self.affected_edges(i, j);
        let mut touched = BucketMerge::<8>::new();
        for &e in &edges[..edge_count] {
            let old = self.values[e].abs_diff(self.values[e + 1]);
            let new = self
                .value_after_swap(e, i, j)
                .abs_diff(self.value_after_swap(e + 1, i, j));
            if old != new {
                touched.push(old, -1);
                touched.push(new, 1);
            }
        }
        let mut delta = 0i64;
        for (idx, net) in touched.nets() {
            let c = i64::from(self.diff_count[idx]);
            delta += (c + net - 1).max(0) - (c - 1).max(0);
        }
        delta
    }

    /// O(1) per candidate.  The culprit's (at most two) adjacent differences vanish
    /// whatever the partner is, so their removal is scored once up front; the
    /// per-candidate pass merges the re-added culprit differences with the
    /// candidate's own edge changes against that baseline.
    fn probe_partners(&self, culprit: usize, out: &mut Vec<u64>) {
        let n = self.n();
        out.clear();
        out.resize(n, self.cost);
        if n < 2 {
            return;
        }
        let m = culprit;
        let vm = self.values[m];
        // Hoisted removal pass over the culprit's edges (m − 1, m) and (m, m + 1):
        // merged difference classes, their counts after removal, and the cost
        // change of the removals alone.
        let left_other = (m > 0).then(|| self.values[m - 1]);
        let right_other = (m + 1 < n).then(|| self.values[m + 1]);
        let mut removed = BucketMerge::<2>::new();
        for d in [
            left_other.map(|v| v.abs_diff(vm)),
            right_other.map(|v| v.abs_diff(vm)),
        ]
        .into_iter()
        .flatten()
        {
            removed.push(d, 1);
        }
        let mut removal_delta = 0i64;
        for slot in removed.entries_mut() {
            let c = i64::from(self.diff_count[slot.0]);
            removal_delta += (c - slot.1 - 1).max(0) - (c - 1).max(0);
            slot.1 = c - slot.1; // count after removal = per-class baseline
        }
        for (j, out_slot) in out.iter_mut().enumerate() {
            if j == m {
                continue;
            }
            let vj = self.values[j];
            // ≤ 2 culprit re-additions + ≤ 2 candidate edges × 2 entries.
            let mut touched = BucketMerge::<6>::new();
            // Culprit edges now pair the neighbour with v_j — unless the candidate
            // *is* that neighbour, in which case the neighbour holds v_m.
            if let Some(lo) = left_other {
                let lo = if m - 1 == j { vm } else { lo };
                touched.push(lo.abs_diff(vj), 1);
            }
            if let Some(ro) = right_other {
                let ro = if m + 1 == j { vm } else { ro };
                touched.push(ro.abs_diff(vj), 1);
            }
            // Candidate edges that do not touch the culprit (those are the culprit
            // edges handled above).
            if j > 0 && j - 1 != m {
                let o = self.values[j - 1];
                let (old, new) = (o.abs_diff(vj), o.abs_diff(vm));
                if old != new {
                    touched.push(old, -1);
                    touched.push(new, 1);
                }
            }
            if j + 1 < n && j + 1 != m {
                let o = self.values[j + 1];
                let (old, new) = (o.abs_diff(vj), o.abs_diff(vm));
                if old != new {
                    touched.push(old, -1);
                    touched.push(new, 1);
                }
            }
            let mut delta = removal_delta;
            for (idx, net) in touched.nets() {
                let b = removed
                    .get(idx)
                    .unwrap_or_else(|| i64::from(self.diff_count[idx]));
                delta += (b + net - 1).max(0) - (b - 1).max(0);
            }
            *out_slot = (self.cost as i64 + delta) as u64;
        }
        debug_assert!(
            out.iter()
                .enumerate()
                .all(|(j, &c)| c == (self.cost as i64 + self.delta_for_swap(m, j)) as u64),
            "batched probe diverged from the per-pair delta path (culprit {m})"
        );
    }

    fn apply_swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let (edges, edge_count) = self.affected_edges(i, j);
        for &e in &edges[..edge_count] {
            self.remove_edge(e);
        }
        self.values.swap(i, j);
        for &e in &edges[..edge_count] {
            self.add_edge(e);
        }
        debug_assert!(
            self.errors_consistency_check(),
            "maintained error vector diverged after swap ({i}, {j})"
        );
    }

    fn name(&self) -> &'static str {
        "all-interval"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AsConfig;
    use crate::engine::Engine;
    use xrand::{default_rng, random_permutation, RandExt};

    #[test]
    fn known_solution_has_zero_cost() {
        // The zig-zag series 1, n, 2, n-1, ... is a classical all-interval series.
        let n = 8;
        let mut zigzag = Vec::new();
        let (mut lo, mut hi) = (1, n);
        while lo <= hi {
            zigzag.push(lo);
            if lo != hi {
                zigzag.push(hi);
            }
            lo += 1;
            hi -= 1;
        }
        let mut p = AllIntervalProblem::new(n);
        p.set_configuration(&zigzag);
        assert_eq!(p.global_cost(), 0, "{zigzag:?}");
    }

    #[test]
    fn identity_has_all_equal_intervals() {
        let p = AllIntervalProblem::new(6);
        // identity: 5 adjacent differences all equal to 1 → 4 repeats
        assert_eq!(p.global_cost(), 4);
    }

    #[test]
    fn incremental_cost_matches_scratch_under_random_swaps() {
        let mut rng = default_rng(4);
        for n in [2usize, 3, 5, 12, 24] {
            let mut init = random_permutation(n, &mut rng);
            init.iter_mut().for_each(|v| *v += 1);
            let mut p = AllIntervalProblem::new(n);
            p.set_configuration(&init);
            for _ in 0..200 {
                let i = rng.index(n);
                let j = rng.index(n);
                p.apply_swap(i, j);
                assert_eq!(
                    p.global_cost(),
                    AllIntervalProblem::cost_from_scratch(p.configuration()),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn cost_after_swap_is_pure() {
        let mut p = AllIntervalProblem::new(10);
        let before = p.configuration().to_vec();
        let cost_before = p.global_cost();
        let _ = p.cost_after_swap(2, 7);
        assert_eq!(p.configuration(), &before[..]);
        assert_eq!(p.global_cost(), cost_before);
    }

    #[test]
    fn adaptive_search_solves_all_interval() {
        for n in [8usize, 12, 14] {
            let cfg = AsConfig::builder().use_custom_reset(false).build();
            let mut engine = Engine::new(AllIntervalProblem::new(n), cfg, 77 + n as u64);
            let r = engine.solve();
            assert!(r.is_solved(), "n = {n}");
            assert_eq!(
                AllIntervalProblem::cost_from_scratch(&r.solution.unwrap()),
                0
            );
        }
    }

    #[test]
    fn variable_errors_are_zero_exactly_on_solutions() {
        let mut p = AllIntervalProblem::new(8);
        p.set_configuration(&[1, 8, 2, 7, 3, 6, 4, 5]);
        let mut errs = Vec::new();
        p.variable_errors(&mut errs);
        assert!(errs.iter().all(|&e| e == 0));
        p.set_configuration(&[1, 2, 3, 4, 5, 6, 7, 8]);
        p.variable_errors(&mut errs);
        assert!(errs.iter().sum::<u64>() > 0);
    }
}
