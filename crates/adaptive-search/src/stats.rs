//! Search statistics and solve results.
//!
//! Table I of the paper reports, per instance: execution time, number of iterations
//! and number of local minima encountered.  [`SearchStats`] tracks those plus the
//! other events the tuning sections discuss (plateau moves, resets, restarts), so the
//! benchmark harnesses can reproduce the table columns directly.

use std::time::Duration;

use crate::termination::StopReason;

/// Counters accumulated by one engine over one (or more, if restarting) walks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Total iterations of the main loop.
    pub iterations: u64,
    /// Number of local minima encountered (no improving move from the culprit).
    pub local_minima: u64,
    /// Improving swaps performed.
    pub improving_moves: u64,
    /// Plateau (equal-cost) swaps performed.
    pub plateau_moves: u64,
    /// Variables marked Tabu.
    pub tabu_marks: u64,
    /// Reset operations performed (generic or custom).
    pub resets: u64,
    /// Resets handled by the problem-specific procedure.
    pub custom_resets: u64,
    /// Custom resets that escaped the local minimum immediately
    /// (strictly better cost than at entry — the paper reports ≈32 %).
    pub custom_reset_escapes: u64,
    /// Full restarts from a fresh random configuration.
    pub restarts: u64,
    /// Restarts performed on behalf of an external coordinator (cooperative
    /// multi-walk stagnation recovery), counted in `restarts` as well.
    pub coordinated_restarts: u64,
    /// Elite configurations offered through [`crate::Engine::inject_candidate`].
    pub injections_offered: u64,
    /// Elite configurations actually adopted (cost below the caller's threshold).
    pub injections_adopted: u64,
    /// External stop-condition polls (the analogue of MPI termination probes).
    pub stop_checks: u64,
    /// Full O(n) culprit-selection scans over the per-variable error vector.
    pub culprit_scans: u64,
    /// Culprit selections served from the carried tie set without a full rescan
    /// (iterations where nothing mutated the configuration since the previous
    /// selection, i.e. the previous iteration only froze its culprit).
    pub culprit_fast_selects: u64,
}

impl SearchStats {
    /// Merge another stats record into this one (used when aggregating walks).
    pub fn merge(&mut self, other: &SearchStats) {
        self.iterations += other.iterations;
        self.local_minima += other.local_minima;
        self.improving_moves += other.improving_moves;
        self.plateau_moves += other.plateau_moves;
        self.tabu_marks += other.tabu_marks;
        self.resets += other.resets;
        self.custom_resets += other.custom_resets;
        self.custom_reset_escapes += other.custom_reset_escapes;
        self.restarts += other.restarts;
        self.coordinated_restarts += other.coordinated_restarts;
        self.injections_offered += other.injections_offered;
        self.injections_adopted += other.injections_adopted;
        self.stop_checks += other.stop_checks;
        self.culprit_scans += other.culprit_scans;
        self.culprit_fast_selects += other.culprit_fast_selects;
    }
}

/// How a solve call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// A zero-cost configuration was reached.
    Solved,
    /// The iteration budget was exhausted first.
    IterationLimit,
    /// An external stop condition fired (e.g. another parallel walk finished first).
    ExternallyStopped,
    /// The walk's thread panicked and was isolated by a fault-tolerant runner;
    /// the result is a synthetic placeholder (no solution, `u64::MAX` costs).
    /// The engine itself never returns this status — only supervising runners
    /// construct it after `catch_unwind`.
    Panicked,
}

/// The outcome of a solve call.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Termination status.
    pub status: SolveStatus,
    /// The solution (a permutation of `1..=n`) when `status == Solved`.
    pub solution: Option<Vec<usize>>,
    /// Cost of the final configuration (0 when solved).
    pub final_cost: u64,
    /// Best cost observed during the search (equals `final_cost` when solved).
    pub best_cost: u64,
    /// Accumulated statistics.
    pub stats: SearchStats,
    /// Wall-clock time spent inside the engine.
    pub elapsed: Duration,
    /// Which [`StopReason`] fired when `status == ExternallyStopped`; `None`
    /// for every other status.  This is what lets request-level callers tell a
    /// cancellation apart from a deadline expiry after the fact.
    pub stop_reason: Option<StopReason>,
}

impl SolveResult {
    /// A synthetic result for a walk whose thread panicked: no solution,
    /// `u64::MAX` costs (so it can never win a best-cost comparison), empty
    /// stats.  Fault-tolerant runners slot this in for the dead walk so
    /// per-walk accounting stays index-aligned.
    pub fn panicked(elapsed: Duration) -> Self {
        Self {
            status: SolveStatus::Panicked,
            solution: None,
            final_cost: u64::MAX,
            best_cost: u64::MAX,
            stats: SearchStats::default(),
            elapsed,
            stop_reason: None,
        }
    }
    /// Convenience predicate.
    pub fn is_solved(&self) -> bool {
        self.status == SolveStatus::Solved
    }

    /// Iterations per second achieved by this run (0 when no time elapsed).
    pub fn iterations_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.stats.iterations as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_counters() {
        let mut a = SearchStats {
            iterations: 10,
            local_minima: 2,
            ..Default::default()
        };
        let b = SearchStats {
            iterations: 5,
            local_minima: 1,
            improving_moves: 3,
            plateau_moves: 2,
            tabu_marks: 4,
            resets: 1,
            custom_resets: 1,
            custom_reset_escapes: 1,
            restarts: 1,
            coordinated_restarts: 1,
            injections_offered: 6,
            injections_adopted: 2,
            stop_checks: 7,
            culprit_scans: 4,
            culprit_fast_selects: 1,
        };
        a.merge(&b);
        assert_eq!(a.iterations, 15);
        assert_eq!(a.local_minima, 3);
        assert_eq!(a.improving_moves, 3);
        assert_eq!(a.plateau_moves, 2);
        assert_eq!(a.tabu_marks, 4);
        assert_eq!(a.resets, 1);
        assert_eq!(a.custom_resets, 1);
        assert_eq!(a.custom_reset_escapes, 1);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.coordinated_restarts, 1);
        assert_eq!(a.injections_offered, 6);
        assert_eq!(a.injections_adopted, 2);
        assert_eq!(a.stop_checks, 7);
        assert_eq!(a.culprit_scans, 4);
        assert_eq!(a.culprit_fast_selects, 1);
    }

    #[test]
    fn result_helpers() {
        let r = SolveResult {
            status: SolveStatus::Solved,
            solution: Some(vec![1]),
            final_cost: 0,
            best_cost: 0,
            stats: SearchStats {
                iterations: 1000,
                ..Default::default()
            },
            elapsed: Duration::from_millis(500),
            stop_reason: None,
        };
        assert!(r.is_solved());
        assert!((r.iterations_per_second() - 2000.0).abs() < 1e-9);

        let r2 = SolveResult {
            status: SolveStatus::IterationLimit,
            solution: None,
            final_cost: 7,
            best_cost: 3,
            stats: SearchStats::default(),
            elapsed: Duration::ZERO,
            stop_reason: None,
        };
        assert!(!r2.is_solved());
        assert_eq!(r2.iterations_per_second(), 0.0);
    }

    #[test]
    fn panicked_placeholder_never_wins_and_never_claims_a_solution() {
        let r = SolveResult::panicked(Duration::from_millis(3));
        assert_eq!(r.status, SolveStatus::Panicked);
        assert!(!r.is_solved());
        assert!(r.solution.is_none());
        assert_eq!(r.best_cost, u64::MAX);
        assert_eq!(r.final_cost, u64::MAX);
        assert_eq!(r.stop_reason, None);
    }
}
