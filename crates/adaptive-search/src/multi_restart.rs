//! Sequential solve drivers.
//!
//! Table I of the paper is produced by running the sequential AS solver 100 times per
//! instance and aggregating best/average/worst times and iteration counts.  The
//! [`SequentialDriver`] does exactly that for any problem factory; [`solve_costas`]
//! and [`solve_with_restarts`] are the convenience entry points used by the examples
//! and the benchmark harnesses.

use std::time::Duration;

use xrand::SeedSequence;

use crate::config::AsConfig;
use crate::costas_model::{CostasModelConfig, CostasProblem};
use crate::engine::Engine;
use crate::problem::PermutationProblem;
use crate::stats::SolveResult;

/// Solve one CAP instance of order `n` with the optimised model and the paper's
/// default parameters.  Runs until a solution is found (no iteration cap), so for
/// paper-sized instances (n ≤ 23) it always returns a solution.
pub fn solve_costas(n: usize, seed: u64) -> SolveResult {
    solve_costas_with(
        n,
        CostasModelConfig::optimized(),
        AsConfig::costas_defaults(n),
        seed,
    )
}

/// Solve one CAP instance with explicit model and engine configurations.
pub fn solve_costas_with(
    n: usize,
    model: CostasModelConfig,
    config: AsConfig,
    seed: u64,
) -> SolveResult {
    let problem = CostasProblem::with_config(n, model);
    let mut engine = Engine::new(problem, config, seed);
    engine.solve()
}

/// Solve a problem with an outer restart loop: each attempt gets `iterations_per_try`
/// iterations; after `max_tries` unsuccessful attempts the best effort is returned.
///
/// This is the classical "random restart" wrapper; the engine's own
/// [`crate::RestartPolicy`] covers the common case, but an outer loop is handy when
/// each try should use an *independent* seed (as the independent multi-walk scheme
/// does, just sequentially).
pub fn solve_with_restarts<P, F>(
    factory: F,
    config: AsConfig,
    master_seed: u64,
    iterations_per_try: u64,
    max_tries: usize,
) -> SolveResult
where
    P: PermutationProblem,
    F: Fn() -> P,
{
    let seeds = SeedSequence::new(master_seed);
    let mut best: Option<SolveResult> = None;
    let mut total_elapsed = Duration::ZERO;
    let mut merged_stats = crate::stats::SearchStats::default();
    for try_index in 0..max_tries.max(1) {
        let cfg = AsConfig {
            max_iterations: iterations_per_try,
            ..config.clone()
        };
        let mut engine = Engine::new(factory(), cfg, seeds.child(try_index as u64).seed());
        let mut result = engine.solve();
        total_elapsed += result.elapsed;
        merged_stats.merge(&result.stats);
        if try_index > 0 {
            merged_stats.restarts += 1;
        }
        let solved = result.is_solved();
        let better = best
            .as_ref()
            .map(|b| result.best_cost < b.best_cost)
            .unwrap_or(true);
        if solved || better {
            result.elapsed = total_elapsed;
            result.stats = merged_stats.clone();
            best = Some(result);
        }
        if solved {
            break;
        }
    }
    let mut out = best.expect("at least one try is always performed");
    out.elapsed = total_elapsed;
    out.stats = merged_stats;
    out
}

/// Runs a batch of independent sequential solves of the same instance, one per seed —
/// the experimental protocol behind Table I (100 runs per instance).
#[derive(Debug, Clone)]
pub struct SequentialDriver {
    /// Order of the CAP instance.
    pub n: usize,
    /// Model configuration used for every run.
    pub model: CostasModelConfig,
    /// Engine configuration used for every run.
    pub config: AsConfig,
}

impl SequentialDriver {
    /// Driver for order `n` with the paper's defaults.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            model: CostasModelConfig::optimized(),
            config: AsConfig::costas_defaults(n),
        }
    }

    /// Use a different model configuration (ablation studies).
    pub fn with_model(mut self, model: CostasModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Use a different engine configuration.
    pub fn with_config(mut self, config: AsConfig) -> Self {
        self.config = config;
        self
    }

    /// Run `runs` independent solves, seeded from `master_seed`.
    pub fn run_many(&self, runs: usize, master_seed: u64) -> Vec<SolveResult> {
        let seeds = SeedSequence::new(master_seed);
        (0..runs)
            .map(|r| {
                solve_costas_with(
                    self.n,
                    self.model,
                    self.config.clone(),
                    seeds.child(r as u64).seed(),
                )
            })
            .collect()
    }
}

/// Summary statistics over a batch of runs (helper mirrored by the richer tooling in
/// the `runtime-stats` crate; kept here so this crate is self-contained).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// How many of them found a solution.
    pub solved: usize,
    /// Average iterations per run.
    pub avg_iterations: f64,
    /// Minimum iterations over the runs.
    pub min_iterations: u64,
    /// Maximum iterations over the runs.
    pub max_iterations: u64,
    /// Average local minima per run.
    pub avg_local_minima: f64,
    /// Average wall-clock seconds per run.
    pub avg_seconds: f64,
}

impl BatchSummary {
    /// Aggregate a batch of results.
    pub fn from_results(results: &[SolveResult]) -> Self {
        assert!(!results.is_empty(), "cannot summarise an empty batch");
        let runs = results.len();
        let solved = results.iter().filter(|r| r.is_solved()).count();
        let iters: Vec<u64> = results.iter().map(|r| r.stats.iterations).collect();
        let avg_iterations = iters.iter().sum::<u64>() as f64 / runs as f64;
        let avg_local_minima =
            results.iter().map(|r| r.stats.local_minima).sum::<u64>() as f64 / runs as f64;
        let avg_seconds =
            results.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>() / runs as f64;
        Self {
            runs,
            solved,
            avg_iterations,
            min_iterations: *iters.iter().min().unwrap(),
            max_iterations: *iters.iter().max().unwrap(),
            avg_local_minima,
            avg_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queens::QueensProblem;
    use crate::stats::SolveStatus;
    use costas::is_costas_permutation;

    #[test]
    fn solve_costas_returns_a_costas_array() {
        let r = solve_costas(11, 4);
        assert_eq!(r.status, SolveStatus::Solved);
        assert!(is_costas_permutation(&r.solution.unwrap()));
    }

    #[test]
    fn driver_runs_are_independent_and_reproducible() {
        let driver = SequentialDriver::new(10);
        let a = driver.run_many(5, 123);
        let b = driver.run_many(5, 123);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.solution, y.solution);
            assert_eq!(x.stats.iterations, y.stats.iterations);
        }
        // different master seeds give (almost surely) different iteration profiles
        let c = driver.run_many(5, 456);
        assert!(a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.stats.iterations != y.stats.iterations));
    }

    #[test]
    fn batch_summary_aggregates() {
        let driver = SequentialDriver::new(9);
        let results = driver.run_many(8, 7);
        let summary = BatchSummary::from_results(&results);
        assert_eq!(summary.runs, 8);
        assert_eq!(summary.solved, 8);
        assert!(summary.min_iterations <= summary.max_iterations);
        assert!(summary.avg_iterations >= summary.min_iterations as f64);
        assert!(summary.avg_iterations <= summary.max_iterations as f64);
    }

    #[test]
    fn restart_wrapper_eventually_solves_with_tiny_budgets() {
        // Queens n = 20 with only 300 iterations per try usually needs a few tries.
        let r = solve_with_restarts(
            || QueensProblem::new(20),
            AsConfig::builder().use_custom_reset(false).build(),
            99,
            300,
            50,
        );
        assert!(r.is_solved());
        assert!(r.stats.iterations > 0);
    }

    #[test]
    fn restart_wrapper_reports_best_effort_when_unsolved() {
        // CAP 18 in 10 iterations × 2 tries will not be solved; the driver must still
        // return a well-formed result with the best cost seen.
        let r = solve_with_restarts(
            || CostasProblem::new(18),
            AsConfig::costas_defaults(18),
            5,
            10,
            2,
        );
        assert!(!r.is_solved());
        assert!(r.best_cost > 0);
        assert!(r.stats.iterations <= 22);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_summary_panics() {
        let _ = BatchSummary::from_results(&[]);
    }
}
