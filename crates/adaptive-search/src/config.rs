//! Tuning parameters of the Adaptive Search engine.
//!
//! The names follow the paper: `RL` (reset limit — how many simultaneously frozen
//! variables trigger a reset), `RP` (reset percentage — which fraction of the
//! variables the generic reset re-randomises), the Tabu tenure (freeze duration), the
//! plateau-following probability of §III-B1 and the restart policy.  The values used
//! for the CAP experiments (§IV-B: `RL = 1`, `RP = 5 %`) are provided by
//! [`AsConfig::costas_defaults`].

/// When is the diversification (reset) operator triggered and how strong is it?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResetPolicy {
    /// `RL`: trigger a reset as soon as this many variables have been marked Tabu
    /// since the previous reset.
    pub reset_limit: usize,
    /// `RP`: fraction (0..=1) of the variables perturbed by the generic reset.
    pub reset_percentage: f64,
    /// Prefer the problem's custom reset procedure when it provides one (§IV-B).
    pub use_custom_reset: bool,
    /// When the custom reset fails to find a strictly better configuration, follow it
    /// with the generic `RP`-percentage random perturbation.
    ///
    /// The paper's description ("the best perturbation is selected") is deterministic;
    /// on its own that can trap the search in a short cycle of near-solutions (the
    /// structured perturbations of configuration A lead to B and vice versa).  The
    /// original C implementation avoids this through additional stochastic state; this
    /// flag is the explicit, documented equivalent (see DESIGN.md).  Disable it to
    /// reproduce the strictly literal reading of §IV-B.
    pub noise_on_failed_custom_reset: bool,
}

impl Default for ResetPolicy {
    fn default() -> Self {
        Self {
            reset_limit: 1,
            reset_percentage: 0.05,
            use_custom_reset: true,
            noise_on_failed_custom_reset: true,
        }
    }
}

/// Full restart policy (start again from a fresh random permutation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Never restart; run a single walk until solved or the iteration budget is hit.
    #[default]
    Never,
    /// Restart every `iterations` iterations of the current walk.
    Every { iterations: u64 },
}

/// All knobs of the Adaptive Search engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AsConfig {
    /// Number of iterations a variable stays frozen after being marked Tabu.
    pub tabu_tenure: u64,
    /// Probability of following a plateau (equal-cost best move), §III-B1.
    pub plateau_probability: f64,
    /// Reset / diversification policy.
    pub reset: ResetPolicy,
    /// Restart policy.
    pub restart: RestartPolicy,
    /// Hard iteration budget for one [`crate::Engine::solve`] call
    /// (`u64::MAX` = effectively unbounded).
    pub max_iterations: u64,
    /// How often (in iterations) the engine evaluates an external stop condition
    /// (the analogue of the paper's non-blocking MPI termination probe every `c`
    /// iterations, §V-A).
    pub stop_check_interval: u64,
}

impl Default for AsConfig {
    fn default() -> Self {
        Self {
            tabu_tenure: 5,
            plateau_probability: 0.93,
            reset: ResetPolicy::default(),
            restart: RestartPolicy::Never,
            max_iterations: u64::MAX,
            stop_check_interval: 64,
        }
    }
}

impl AsConfig {
    /// The configuration used for the Costas Array Problem in the paper
    /// (`RL = 1`, `RP = 5 %`, custom reset enabled, no restarts).
    ///
    /// The instance size is accepted for future-proofing (some problems scale their
    /// tenure with `n`); the CAP settings are size-independent.
    pub fn costas_defaults(_n: usize) -> Self {
        Self::default()
    }

    /// Start building a configuration fluently.
    pub fn builder() -> AsConfigBuilder {
        AsConfigBuilder::default()
    }

    /// Validate parameter ranges; called by the engine constructor.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.plateau_probability) {
            return Err(format!(
                "plateau_probability must be in [0,1], got {}",
                self.plateau_probability
            ));
        }
        if !(0.0..=1.0).contains(&self.reset.reset_percentage) {
            return Err(format!(
                "reset_percentage must be in [0,1], got {}",
                self.reset.reset_percentage
            ));
        }
        if self.reset.reset_limit == 0 {
            return Err("reset_limit must be at least 1".to_string());
        }
        if self.stop_check_interval == 0 {
            return Err("stop_check_interval must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Fluent builder for [`AsConfig`].
#[derive(Debug, Clone, Default)]
pub struct AsConfigBuilder {
    config: AsConfig,
}

impl AsConfigBuilder {
    /// Set the Tabu tenure (freeze duration in iterations).
    pub fn tabu_tenure(mut self, tenure: u64) -> Self {
        self.config.tabu_tenure = tenure;
        self
    }

    /// Set the plateau-following probability.
    pub fn plateau_probability(mut self, p: f64) -> Self {
        self.config.plateau_probability = p;
        self
    }

    /// Set `RL`, the number of frozen variables that triggers a reset.
    pub fn reset_limit(mut self, rl: usize) -> Self {
        self.config.reset.reset_limit = rl;
        self
    }

    /// Set `RP`, the fraction of variables perturbed by the generic reset.
    pub fn reset_percentage(mut self, rp: f64) -> Self {
        self.config.reset.reset_percentage = rp;
        self
    }

    /// Enable or disable the problem-specific reset procedure.
    pub fn use_custom_reset(mut self, enabled: bool) -> Self {
        self.config.reset.use_custom_reset = enabled;
        self
    }

    /// Enable or disable the random kick applied when the custom reset fails to
    /// escape (see [`ResetPolicy::noise_on_failed_custom_reset`]).
    pub fn noise_on_failed_custom_reset(mut self, enabled: bool) -> Self {
        self.config.reset.noise_on_failed_custom_reset = enabled;
        self
    }

    /// Set the restart policy.
    pub fn restart(mut self, policy: RestartPolicy) -> Self {
        self.config.restart = policy;
        self
    }

    /// Set the iteration budget.
    pub fn max_iterations(mut self, max: u64) -> Self {
        self.config.max_iterations = max;
        self
    }

    /// Set how often external stop conditions are polled.
    pub fn stop_check_interval(mut self, every: u64) -> Self {
        self.config.stop_check_interval = every;
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (out-of-range probabilities, zero
    /// reset limit, …); use [`AsConfig::validate`] for a non-panicking check.
    pub fn build(self) -> AsConfig {
        if let Err(e) = self.config.validate() {
            panic!("invalid AsConfig: {e}");
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AsConfig::costas_defaults(20);
        assert_eq!(c.reset.reset_limit, 1);
        assert!((c.reset.reset_percentage - 0.05).abs() < 1e-12);
        assert!(c.reset.use_custom_reset);
        assert_eq!(c.restart, RestartPolicy::Never);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = AsConfig::builder()
            .tabu_tenure(5)
            .plateau_probability(0.5)
            .reset_limit(3)
            .reset_percentage(0.25)
            .use_custom_reset(false)
            .restart(RestartPolicy::Every { iterations: 1000 })
            .max_iterations(10_000)
            .stop_check_interval(16)
            .build();
        assert_eq!(c.tabu_tenure, 5);
        assert_eq!(c.plateau_probability, 0.5);
        assert_eq!(c.reset.reset_limit, 3);
        assert_eq!(c.reset.reset_percentage, 0.25);
        assert!(!c.reset.use_custom_reset);
        assert_eq!(c.restart, RestartPolicy::Every { iterations: 1000 });
        assert_eq!(c.max_iterations, 10_000);
        assert_eq!(c.stop_check_interval, 16);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let c = AsConfig {
            plateau_probability: 1.5,
            ..AsConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = AsConfig::default();
        c.reset.reset_percentage = -0.1;
        assert!(c.validate().is_err());
        let mut c = AsConfig::default();
        c.reset.reset_limit = 0;
        assert!(c.validate().is_err());
        let c = AsConfig {
            stop_check_interval: 0,
            ..AsConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid AsConfig")]
    fn builder_panics_on_invalid() {
        AsConfig::builder().plateau_probability(2.0).build();
    }
}
