//! Deterministic fault injection for chaos testing.
//!
//! The fault-tolerance layer (panic isolation in the multi-walk runners, worker
//! supervision and in-flight cancellation in `solverd`) needs to be *provable*,
//! and "kill -9 a thread at a random moment" proves nothing reproducibly.  This
//! module makes faults a deterministic function of `(plan seed, request seed)`:
//!
//! * a [`FaultPlan`] — a seeded recipe saying which fraction of walks panic or
//!   stall, and after how much work;
//! * a [`FaultyProblem`] — a [`PermutationProblem`] wrapper that counts
//!   `global_cost` calls (a stable proxy for engine progress: the solve loop
//!   reads the global cost at least once per iteration) and trips its assigned
//!   fault at the chosen count;
//! * a `"chaos-costas"` workload registered through
//!   [`crate::problems::register_extra`]: a Costas model wrapped in the
//!   currently [`install_plan`]ed fault plan, resolvable by any request path
//!   (including a served request arriving over a socket) but invisible to
//!   benchmark enumeration.
//!
//! Determinism chain: the engine's initial configuration is a pure function of
//! the request seed, the wrapper decides its fault by hashing that first
//! configuration against the plan seed, and the engine's `global_cost` call
//! trajectory is itself seed-deterministic.  Therefore *the same request under
//! the same plan always panics (or stalls) at the same point* — chaos e2e tests
//! can predict exactly which requests die and assert that two identical runs
//! classify identically.

use std::cell::Cell;
use std::sync::Mutex;
use std::time::Duration;

use xrand::Rng64;

use crate::config::AsConfig;
use crate::costas_model::CostasProblem;
use crate::problem::PermutationProblem;
use crate::problems::{self, DynProblem, ProblemInfo};

/// Registry key of the fault-wrapped Costas workload.
pub const CHAOS_PROBLEM: &str = "chaos-costas";

/// The fault assigned to one walk (one engine / one wrapped problem instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the wrapper is a transparent forwarder.
    #[default]
    None,
    /// Panic when the `global_cost` call counter reaches `op`.
    PanicAt {
        /// The fatal call count.
        op: u64,
    },
    /// Sleep `for_ms` milliseconds when the counter reaches `op` (a seized
    /// worker: the thread is alive but makes no progress for a while).
    StallAt {
        /// The stalling call count.
        op: u64,
        /// How long the stall lasts.
        for_ms: u64,
    },
}

/// A seeded recipe assigning faults to walks.
///
/// `fault_for` hashes the walk's *initial configuration* (a pure function of
/// the engine seed) against `seed`, so the assignment is deterministic per
/// `(plan, request)` pair and differs across walks of a fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Out of 1000 walks, how many panic.
    pub panic_per_mille: u16,
    /// Out of 1000 walks, how many stall (decided after the panic roll).
    pub stall_per_mille: u16,
    /// Stall duration for stalling walks.
    pub stall_ms: u64,
    /// Faults trip at a `global_cost` call count in
    /// `min_op .. min_op + op_spread` (spread of at least 1).
    pub min_op: u64,
    /// Width of the trip window.
    pub op_spread: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_per_mille: 0,
            stall_per_mille: 0,
            stall_ms: 0,
            min_op: 1,
            op_spread: 64,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the wrapper forwards transparently).
    pub fn benign(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Decide the fault for a walk whose engine starts at `initial`.
    ///
    /// Pure: the same `(plan, initial)` pair always returns the same fault, so
    /// a test can rebuild the engine for a request seed, read its initial
    /// configuration and *predict* whether the served request will die.
    pub fn fault_for(&self, initial: &[usize]) -> Fault {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &v in initial {
            h = (h ^ v as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
        }
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let roll = (h % 1000) as u16;
        let op = self.min_op + (h >> 10) % self.op_spread.max(1);
        if roll < self.panic_per_mille {
            Fault::PanicAt { op }
        } else if roll < self.panic_per_mille + self.stall_per_mille {
            Fault::StallAt {
                op,
                for_ms: self.stall_ms,
            }
        } else {
            Fault::None
        }
    }
}

/// A [`PermutationProblem`] wrapper that trips a deterministic [`Fault`].
///
/// The fault is decided at the *first* `set_configuration` call (the engine's
/// initial randomisation) via [`FaultPlan::fault_for`]; from then on every
/// `global_cost` call advances an op counter, and the fault fires when the
/// counter reaches its trip point.  All other trait methods forward untouched,
/// so a fault-free wrapped walk is computationally identical to the bare model
/// (same probes, same caches, same accelerated kernels).
pub struct FaultyProblem {
    inner: DynProblem,
    plan: FaultPlan,
    fault: Cell<Fault>,
    decided: Cell<bool>,
    ops: Cell<u64>,
}

impl FaultyProblem {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: DynProblem, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            fault: Cell::new(Fault::None),
            decided: Cell::new(false),
            ops: Cell::new(0),
        }
    }

    /// The fault this instance will (or did) trip, once decided.
    pub fn fault(&self) -> Fault {
        self.fault.get()
    }

    /// One op: count a `global_cost` call and trip the fault if its moment
    /// has come.  `&self` because `global_cost` is a read-only probe; the
    /// counter lives in a `Cell`.
    fn tick(&self) {
        let op = self.ops.get() + 1;
        self.ops.set(op);
        // `>=` (not `==`): the fault is decided at the first
        // `set_configuration`, and a handful of ops may already have passed by
        // then — a trip point must never be silently skipped.  A stall fires
        // once and disarms.
        match self.fault.get() {
            Fault::PanicAt { op: at } if op >= at => {
                panic!(
                    "injected fault: panic at op {at} (plan seed {})",
                    self.plan.seed
                )
            }
            Fault::StallAt { op: at, for_ms } if op >= at => {
                self.fault.set(Fault::None);
                std::thread::sleep(Duration::from_millis(for_ms));
            }
            _ => {}
        }
    }
}

impl PermutationProblem for FaultyProblem {
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn set_configuration(&mut self, values: &[usize]) {
        if !self.decided.get() {
            self.fault.set(self.plan.fault_for(values));
            self.decided.set(true);
        }
        self.inner.set_configuration(values);
    }
    fn configuration(&self) -> &[usize] {
        self.inner.configuration()
    }
    fn global_cost(&self) -> u64 {
        self.tick();
        self.inner.global_cost()
    }
    fn variable_errors(&self, out: &mut Vec<u64>) {
        self.inner.variable_errors(out);
    }
    fn cached_errors(&self) -> Option<&[u64]> {
        self.inner.cached_errors()
    }
    fn delta_for_swap(&self, i: usize, j: usize) -> i64 {
        self.inner.delta_for_swap(i, j)
    }
    fn probe_partners(&self, culprit: usize, out: &mut Vec<u64>) {
        self.inner.probe_partners(culprit, out);
    }
    fn probe_partners_reference(&self, culprit: usize, out: &mut Vec<u64>) {
        self.inner.probe_partners_reference(culprit, out);
    }
    fn has_accelerated_probe(&self) -> bool {
        self.inner.has_accelerated_probe()
    }
    fn cost_after_swap(&mut self, i: usize, j: usize) -> u64 {
        self.inner.cost_after_swap(i, j)
    }
    fn apply_swap(&mut self, i: usize, j: usize) {
        self.inner.apply_swap(i, j);
    }
    fn custom_reset(&mut self, worst_var: usize, rng: &mut dyn Rng64) -> Option<u64> {
        self.inner.custom_reset(worst_var, rng)
    }
    fn name(&self) -> &'static str {
        CHAOS_PROBLEM
    }
    fn is_solution(&self) -> bool {
        self.inner.is_solution()
    }
}

/// The process-wide plan the `"chaos-costas"` build function reads.  One plan
/// per process: tests sharing a binary install theirs once (under a `Once` or
/// by agreeing on a single plan) rather than racing.
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Install the plan future `"chaos-costas"` instances are built under.
pub fn install_plan(plan: FaultPlan) {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
}

/// The currently installed plan, if any.
pub fn installed_plan() -> Option<FaultPlan> {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Remove the installed plan (subsequent builds are benign forwarders).
pub fn clear_plan() {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn build_chaos(n: usize) -> DynProblem {
    let plan = installed_plan().unwrap_or_else(|| FaultPlan::benign(0));
    Box::new(FaultyProblem::new(Box::new(CostasProblem::new(n)), plan))
}

/// Register the `"chaos-costas"` workload (idempotent).  Call once per process
/// before submitting chaos requests; combine with [`install_plan`] to arm it.
///
/// `bench_size` is `usize::MAX` so a service never auto-fans-out chaos
/// requests by the "n ≥ bench size" policy — tests choose their fan-out
/// explicitly.
pub fn ensure_chaos_registered() {
    problems::register_extra(ProblemInfo {
        key: CHAOS_PROBLEM,
        summary: "Costas wrapped in the installed deterministic fault plan",
        size_unit: "array order n (n variables)",
        build: build_chaos,
        default_config: AsConfig::costas_defaults,
        is_optimum: costas::is_costas_permutation,
        bench_size: usize::MAX,
        bench_large_sizes: &[],
        test_sizes: &[8, 12],
        solvable_sizes: &[],
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn spicy_plan() -> FaultPlan {
        FaultPlan {
            seed: 0xC0FFEE,
            panic_per_mille: 500,
            stall_per_mille: 100,
            stall_ms: 1,
            min_op: 1,
            op_spread: 32,
        }
    }

    #[test]
    fn fault_assignment_is_deterministic_and_seed_sensitive() {
        let plan = spicy_plan();
        let config: Vec<usize> = (1..=12).collect();
        assert_eq!(plan.fault_for(&config), plan.fault_for(&config));
        // across many configurations the plan must actually assign each class
        let mut seen_panic = false;
        let mut seen_stall = false;
        let mut seen_none = false;
        for rot in 0..512usize {
            let mut c = config.clone();
            c.rotate_left(rot % 12);
            c.swap(rot % 12, (rot * 5 + rot / 12) % 12);
            match plan.fault_for(&c) {
                Fault::PanicAt { .. } => seen_panic = true,
                Fault::StallAt { .. } => seen_stall = true,
                Fault::None => seen_none = true,
            }
        }
        assert!(seen_panic && seen_stall && seen_none);
    }

    #[test]
    fn benign_wrapper_is_computationally_transparent() {
        // Same seed, same model, with and without the wrapper: identical walk.
        let bare = Engine::new(CostasProblem::new(10), AsConfig::costas_defaults(10), 42).solve();
        let wrapped = Engine::new(
            FaultyProblem::new(Box::new(CostasProblem::new(10)), FaultPlan::benign(7)),
            AsConfig::costas_defaults(10),
            42,
        )
        .solve();
        assert_eq!(bare.solution, wrapped.solution);
        assert_eq!(bare.stats.iterations, wrapped.stats.iterations);
    }

    #[test]
    fn a_panic_fault_fires_at_its_op_deterministically() {
        let plan = spicy_plan();
        // Predict with a *bare* engine: the initial configuration is a pure
        // function of (n, seed), so the prediction never risks tripping the
        // fault itself — the same technique the chaos e2e tests use.
        let seed = (0..200u64)
            .find(|&seed| {
                let engine =
                    Engine::new(CostasProblem::new(10), AsConfig::costas_defaults(10), seed);
                matches!(
                    plan.fault_for(engine.problem().configuration()),
                    Fault::PanicAt { .. }
                )
            })
            .expect("a 50% plan assigns a panic within 200 seeds");
        let run = |seed| {
            std::panic::catch_unwind(|| {
                let mut engine = Engine::new(
                    FaultyProblem::new(Box::new(CostasProblem::new(10)), plan),
                    AsConfig::costas_defaults(10),
                    seed,
                );
                let r = engine.solve();
                r.stats.iterations
            })
        };
        let a = run(seed);
        let b = run(seed);
        assert!(a.is_err(), "assigned panic must fire");
        assert!(b.is_err(), "and fire again on the identical rerun");
    }

    #[test]
    fn chaos_registration_dispatches_and_reads_the_installed_plan() {
        ensure_chaos_registered();
        ensure_chaos_registered(); // idempotent
        let info = problems::find(CHAOS_PROBLEM).expect("registered");
        assert_eq!(info.bench_size, usize::MAX, "never auto-fans-out");
        let p = (info.build)(8);
        assert_eq!(p.name(), CHAOS_PROBLEM);
        assert_eq!(p.size(), 8);
    }
}
