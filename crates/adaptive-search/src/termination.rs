//! External stop conditions.
//!
//! In the paper's parallel scheme every MPI process performs a *non-blocking test
//! every `c` iterations* to learn whether some other process has already found a
//! solution (§V-A).  The engine models this with a [`StopCondition`]: a cheap
//! predicate polled every [`crate::AsConfig::stop_check_interval`] iterations.  The
//! `multiwalk` crate plugs an `AtomicBool` (thread runner) or an `mpi-sim` probe
//! (message-passing runner) into this hook.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why the engine was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Another walker found a solution (or the coordinator cancelled the job).
    Cancelled,
    /// A wall-clock deadline expired.
    Deadline,
}

/// A poll-able stop condition.
///
/// Deliberately *not* `Send`-bounded: each walk owns its own stop condition (which may
/// wrap a non-`Sync` message-passing endpoint); only the underlying signal (an atomic
/// flag, a channel) needs to cross threads.
pub trait StopCondition {
    /// Return `Some(reason)` when the engine should stop now.
    fn should_stop(&mut self) -> Option<StopReason>;
}

/// Never stops; the default for purely sequential runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverStop;

impl StopCondition for NeverStop {
    fn should_stop(&mut self) -> Option<StopReason> {
        None
    }
}

/// Stop when a shared flag is raised — the thread-parallel analogue of the paper's
/// "some other process has found a solution" message.
#[derive(Debug, Clone)]
pub struct FlagStop {
    flag: Arc<AtomicBool>,
}

impl FlagStop {
    /// Wrap a shared flag.
    pub fn new(flag: Arc<AtomicBool>) -> Self {
        Self { flag }
    }

    /// Create a fresh unraised flag and its stop condition.
    pub fn fresh() -> (Arc<AtomicBool>, Self) {
        let flag = Arc::new(AtomicBool::new(false));
        (flag.clone(), Self { flag })
    }
}

impl StopCondition for FlagStop {
    fn should_stop(&mut self) -> Option<StopReason> {
        if self.flag.load(Ordering::Relaxed) {
            Some(StopReason::Cancelled)
        } else {
            None
        }
    }
}

/// A shared cancellation handle: the owner side of a [`FlagStop`].
///
/// One token is created per solve job; cloning shares the underlying flag, so
/// a service can keep one clone in a registry (to honour a `cancel` wire
/// request) while the worker threads poll another through
/// [`CancelToken::stop_condition`].  Raising the flag is idempotent and
/// irrevocable for the job's lifetime — a cancelled job stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the flag: every stop condition derived from this token (or any of
    /// its clones) fires [`StopReason::Cancelled`] at its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// A [`StopCondition`] view of this token, for the engine's polling loop.
    pub fn stop_condition(&self) -> FlagStop {
        FlagStop::new(self.flag.clone())
    }

    /// Do two handles share the same underlying flag?  (Used by services to
    /// guard registry removal against id reuse.)
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Stop when a wall-clock deadline has passed.
#[derive(Debug, Clone)]
pub struct DeadlineStop {
    deadline: Instant,
}

impl DeadlineStop {
    /// Stop after the given duration from now.
    pub fn after(timeout: Duration) -> Self {
        Self {
            deadline: Instant::now() + timeout,
        }
    }

    /// Stop at the given instant.
    pub fn at(deadline: Instant) -> Self {
        Self { deadline }
    }
}

impl StopCondition for DeadlineStop {
    fn should_stop(&mut self) -> Option<StopReason> {
        if Instant::now() >= self.deadline {
            Some(StopReason::Deadline)
        } else {
            None
        }
    }
}

/// Combine several stop conditions; the first one that fires wins.
pub struct AnyStop {
    conditions: Vec<Box<dyn StopCondition>>,
}

impl AnyStop {
    /// Build from a list of boxed conditions.
    pub fn new(conditions: Vec<Box<dyn StopCondition>>) -> Self {
        Self { conditions }
    }
}

impl StopCondition for AnyStop {
    fn should_stop(&mut self) -> Option<StopReason> {
        self.conditions.iter_mut().find_map(|c| c.should_stop())
    }
}

/// A closure-based stop condition (handy in tests and for custom integrations such as
/// the mpi-sim probe).
pub struct FnStop<F: FnMut() -> Option<StopReason>>(pub F);

impl<F: FnMut() -> Option<StopReason>> StopCondition for FnStop<F> {
    fn should_stop(&mut self) -> Option<StopReason> {
        (self.0)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_stop_never_stops() {
        let mut s = NeverStop;
        for _ in 0..10 {
            assert_eq!(s.should_stop(), None);
        }
    }

    #[test]
    fn flag_stop_fires_when_raised() {
        let (flag, mut stop) = FlagStop::fresh();
        assert_eq!(stop.should_stop(), None);
        flag.store(true, Ordering::Relaxed);
        assert_eq!(stop.should_stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn deadline_stop_fires_after_timeout() {
        let mut immediate = DeadlineStop::after(Duration::ZERO);
        assert_eq!(immediate.should_stop(), Some(StopReason::Deadline));
        let mut later = DeadlineStop::after(Duration::from_secs(3600));
        assert_eq!(later.should_stop(), None);
        let mut at = DeadlineStop::at(Instant::now() - Duration::from_millis(1));
        assert_eq!(at.should_stop(), Some(StopReason::Deadline));
    }

    #[test]
    fn any_stop_returns_first_firing_condition() {
        let (_flag, flag_stop) = FlagStop::fresh();
        let mut any = AnyStop::new(vec![
            Box::new(flag_stop),
            Box::new(DeadlineStop::after(Duration::ZERO)),
        ]);
        assert_eq!(any.should_stop(), Some(StopReason::Deadline));
        let mut none = AnyStop::new(vec![Box::new(NeverStop), Box::new(NeverStop)]);
        assert_eq!(none.should_stop(), None);
    }

    #[test]
    fn cancel_token_is_shared_and_idempotent() {
        let token = CancelToken::new();
        let clone = token.clone();
        let mut stop = token.stop_condition();
        assert!(!token.is_cancelled());
        assert_eq!(stop.should_stop(), None);
        clone.cancel();
        clone.cancel(); // idempotent
        assert!(token.is_cancelled());
        assert_eq!(stop.should_stop(), Some(StopReason::Cancelled));
        assert!(token.same_token(&clone));
        assert!(!token.same_token(&CancelToken::new()));
    }

    #[test]
    fn fn_stop_uses_the_closure() {
        let mut calls = 0;
        let mut s = FnStop(move || {
            calls += 1;
            if calls >= 3 {
                Some(StopReason::Cancelled)
            } else {
                None
            }
        });
        assert_eq!(s.should_stop(), None);
        assert_eq!(s.should_stop(), None);
        assert_eq!(s.should_stop(), Some(StopReason::Cancelled));
    }
}
