//! Number partitioning (CSPLib prob049) for Adaptive Search.
//!
//! Partition the numbers `1..=n` into two groups of `n/2` numbers each so that both
//! groups have the same sum *and* the same sum of squares — the classical Adaptive
//! Search benchmark from the original AS papers.  The permutation encoding makes
//! the cardinality constraint implicit: the configuration is a permutation of
//! `1..=n` whose first `n/2` positions form group A and whose last `n/2` positions
//! form group B, and the elementary move is the engine's position swap.  Non-trivial
//! instances exist for `n ≡ 0 (mod 4)` (both targets must be integral and even).
//!
//! Cost model (kept integral by doubling): with `S = Σ v` and `Q = Σ v²`, let the
//! surpluses be `D = 2·sum(A) − S` and `Dq = 2·sumsq(A) − Q`; the global cost is
//! `|D| + |Dq|`, zero exactly on balanced partitions.
//!
//! Per-variable errors project the surpluses onto the positions that aggravate
//! them: a position on the sum-surplus side is charged `min(|D|, 2v)` (its value's
//! removable share of the sum imbalance) and analogously `min(|Dq|, 2v²)` for the
//! square surplus.  This steers culprit selection towards heavy values on the
//! overweight side while keeping every error derivable from `(side, value, D, Dq)`
//! alone.  Maintenance: a within-half swap moves no value across the cut, so the
//! two positions simply exchange errors (O(1)); a cross-half swap changes the
//! global surpluses, which touch *every* position's error, so the vector is
//! refreshed in O(n) — the same order as the probe loop the engine already pays
//! per iteration, and the best possible for an error function that (necessarily)
//! depends on the global surplus.

use crate::problem::PermutationProblem;

/// Permutation-encoded number partitioning with maintained surpluses.
#[derive(Debug, Clone)]
pub struct PartitionProblem {
    /// Permutation of `1..=n`; positions `0..n/2` form group A.
    values: Vec<usize>,
    /// `n / 2`: first index of group B.
    half: usize,
    /// `2·sum(A) − S` (doubled sum surplus of group A).
    sum_surplus: i64,
    /// `2·sumsq(A) − Q` (doubled square surplus of group A).
    sq_surplus: i64,
    cost: u64,
    /// Maintained per-position errors (see the module docs for the rule).
    errors: Vec<u64>,
}

impl PartitionProblem {
    /// Create an instance over `1..=n`, initialised with the identity permutation.
    ///
    /// # Panics
    /// Panics if `n` is zero or odd (the two groups must have equal cardinality).
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(2),
            "partition order must be positive and even"
        );
        let mut p = Self {
            values: (1..=n).collect(),
            half: n / 2,
            sum_surplus: 0,
            sq_surplus: 0,
            cost: 0,
            errors: vec![0; n],
        };
        p.rebuild();
        p
    }

    /// Is `p` in group A?
    #[inline]
    fn in_first(&self, p: usize) -> bool {
        p < self.half
    }

    /// Error of one position under the documented projection rule, given the
    /// current surpluses.
    #[inline]
    fn error_at(&self, p: usize) -> u64 {
        let v = self.values[p] as i64;
        // +1 on the A side, −1 on the B side (whose surplus is the negation).
        let side = if self.in_first(p) { 1 } else { -1 };
        let mut err = 0i64;
        if self.sum_surplus * side > 0 {
            err += (2 * v).min(self.sum_surplus.abs());
        }
        if self.sq_surplus * side > 0 {
            err += (2 * v * v).min(self.sq_surplus.abs());
        }
        err as u64
    }

    fn rebuild(&mut self) {
        let n = self.values.len() as i64;
        let total_sum = n * (n + 1) / 2;
        let total_sq = n * (n + 1) * (2 * n + 1) / 6;
        let first_sum: i64 = self.values[..self.half].iter().map(|&v| v as i64).sum();
        let first_sq: i64 = self.values[..self.half]
            .iter()
            .map(|&v| (v * v) as i64)
            .sum();
        self.sum_surplus = 2 * first_sum - total_sum;
        self.sq_surplus = 2 * first_sq - total_sq;
        self.cost = (self.sum_surplus.abs() + self.sq_surplus.abs()) as u64;
        for p in 0..self.values.len() {
            self.errors[p] = self.error_at(p);
        }
    }

    /// Cost after moving value `a` out of group A and value `b` in, without
    /// committing anything.
    #[inline]
    fn cost_after_exchange(&self, a: i64, b: i64) -> u64 {
        let d = b - a;
        ((self.sum_surplus + 2 * d).abs() + (self.sq_surplus + 2 * (b * b - a * a)).abs()) as u64
    }

    /// Debug helper: does the maintained state match a recompute?
    fn state_consistency_check(&self) -> bool {
        let mut fresh = Self::new(self.values.len());
        fresh.set_configuration(&self.values);
        fresh.sum_surplus == self.sum_surplus
            && fresh.sq_surplus == self.sq_surplus
            && fresh.cost == self.cost
            && fresh.errors == self.errors
    }
}

impl PermutationProblem for PartitionProblem {
    fn size(&self) -> usize {
        self.values.len()
    }

    fn set_configuration(&mut self, values: &[usize]) {
        self.values = values.to_vec();
        self.rebuild();
    }

    fn configuration(&self) -> &[usize] {
        &self.values
    }

    fn global_cost(&self) -> u64 {
        self.cost
    }

    fn variable_errors(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.errors);
    }

    fn cached_errors(&self) -> Option<&[u64]> {
        Some(&self.errors)
    }

    /// O(1): a within-half swap never changes the partition; a cross-half swap
    /// shifts both surpluses by the doubled exchanged amounts.
    fn delta_for_swap(&self, i: usize, j: usize) -> i64 {
        if i == j || self.in_first(i) == self.in_first(j) {
            return 0;
        }
        let (a, b) = if self.in_first(i) {
            (self.values[i] as i64, self.values[j] as i64)
        } else {
            (self.values[j] as i64, self.values[i] as i64)
        };
        self.cost_after_exchange(a, b) as i64 - self.cost as i64
    }

    /// O(1) per candidate: the culprit's side and value are hoisted; same-side
    /// candidates keep the current cost, cross-side candidates are scored from the
    /// two cached surpluses alone.
    fn probe_partners(&self, culprit: usize, out: &mut Vec<u64>) {
        let n = self.values.len();
        out.clear();
        out.resize(n, self.cost);
        let m = culprit;
        let vm = self.values[m] as i64;
        let m_first = self.in_first(m);
        for (j, slot) in out.iter_mut().enumerate() {
            if j == m || self.in_first(j) == m_first {
                continue;
            }
            let vj = self.values[j] as i64;
            let (a, b) = if m_first { (vm, vj) } else { (vj, vm) };
            *slot = self.cost_after_exchange(a, b);
        }
        debug_assert!(
            out.iter()
                .enumerate()
                .all(|(j, &c)| c == (self.cost as i64 + self.delta_for_swap(m, j)) as u64),
            "batched probe diverged from the per-pair delta path (culprit {m})"
        );
    }

    fn apply_swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        if self.in_first(i) == self.in_first(j) {
            // Same group: the partition is unchanged, and errors depend only on
            // (side, value), so the two positions exchange theirs.
            self.values.swap(i, j);
            self.errors.swap(i, j);
        } else {
            let (a, b) = if self.in_first(i) {
                (self.values[i] as i64, self.values[j] as i64)
            } else {
                (self.values[j] as i64, self.values[i] as i64)
            };
            self.cost = self.cost_after_exchange(a, b);
            let d = b - a;
            self.sum_surplus += 2 * d;
            self.sq_surplus += 2 * (b * b - a * a);
            self.values.swap(i, j);
            // The surpluses changed sign or magnitude for every position: refresh
            // the whole vector (O(n), same order as one probe pass).
            for p in 0..self.values.len() {
                self.errors[p] = self.error_at(p);
            }
        }
        debug_assert!(
            self.state_consistency_check(),
            "maintained partition state diverged after swap ({i}, {j})"
        );
    }

    fn name(&self) -> &'static str {
        "number-partitioning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AsConfig;
    use crate::engine::Engine;
    use xrand::{default_rng, random_permutation, RandExt};

    #[test]
    fn known_balanced_partition_has_zero_cost() {
        // {1, 4, 6, 7} vs {2, 3, 5, 8}: sums 18/18, square sums 102/102.
        let mut p = PartitionProblem::new(8);
        p.set_configuration(&[1, 4, 6, 7, 2, 3, 5, 8]);
        assert_eq!(p.global_cost(), 0);
        assert!(p.is_solution());
        let mut errs = Vec::new();
        p.variable_errors(&mut errs);
        assert!(errs.iter().all(|&e| e == 0));
    }

    #[test]
    fn identity_cost_matches_hand_computation() {
        // n = 4: A = {1,2} → D = 2·3 − 10 = −4, Dq = 2·5 − 30 = −20 → cost 24.
        let p = PartitionProblem::new(4);
        assert_eq!(p.global_cost(), 24);
        // the deficit side is A, so only B positions are charged
        assert_eq!(&p.errors[..2], &[0, 0]);
        assert!(p.errors[2] > 0 && p.errors[3] > 0);
    }

    #[test]
    fn errors_are_positive_on_the_surplus_side_whenever_cost_is() {
        let mut rng = default_rng(17);
        for n in [4usize, 8, 12, 20] {
            let mut init = random_permutation(n, &mut rng);
            init.iter_mut().for_each(|v| *v += 1);
            let mut p = PartitionProblem::new(n);
            p.set_configuration(&init);
            if p.global_cost() > 0 {
                assert!(p.errors.iter().any(|&e| e > 0), "n = {n}");
            }
        }
    }

    #[test]
    fn incremental_state_survives_random_swaps() {
        let mut rng = default_rng(29);
        for n in [2usize, 4, 6, 10, 16] {
            let mut init = random_permutation(n, &mut rng);
            init.iter_mut().for_each(|v| *v += 1);
            let mut p = PartitionProblem::new(n);
            p.set_configuration(&init);
            for _ in 0..200 {
                let i = rng.index(n);
                let j = rng.index(n);
                let predicted = (p.global_cost() as i64 + p.delta_for_swap(i, j)) as u64;
                p.apply_swap(i, j); // carries its own consistency debug_assert
                assert_eq!(p.global_cost(), predicted, "n={n}");
            }
        }
    }

    #[test]
    fn probes_are_pure_and_within_half_swaps_are_free() {
        let p = PartitionProblem::new(10);
        let before = p.configuration().to_vec();
        let cost = p.global_cost();
        assert_eq!(p.delta_for_swap(0, 3), 0, "within-half swap is cost-free");
        assert_eq!(p.delta_for_swap(7, 9), 0);
        let mut probe = Vec::new();
        p.probe_partners(2, &mut probe);
        assert_eq!(p.configuration(), &before[..]);
        assert_eq!(p.global_cost(), cost);
        assert_eq!(probe[2], cost);
        assert!(probe[..5].iter().all(|&c| c == cost));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_orders_are_rejected() {
        let _ = PartitionProblem::new(7);
    }

    #[test]
    fn adaptive_search_solves_solvable_orders() {
        // Balanced partitions with equal sums and square sums exist for these.
        for n in [8usize, 12, 16] {
            let cfg = AsConfig::builder().use_custom_reset(false).build();
            let mut engine = Engine::new(PartitionProblem::new(n), cfg, 7 + n as u64);
            let r = engine.solve();
            assert!(r.is_solved(), "n = {n}");
            let mut check = PartitionProblem::new(n);
            check.set_configuration(&r.solution.unwrap());
            assert_eq!(check.global_cost(), 0);
        }
    }
}
