//! Crash-recovery test kit for campaign mode.
//!
//! The contract under test: a campaign interrupted at an arbitrary point and
//! resumed from its checkpoint is **bit-for-bit identical** to an uninterrupted
//! same-seed run — same per-walker engine snapshots (RNG words included), same
//! statistics, same symmetry-deduped result log bytes.  Torn checkpoint tails
//! (the process died mid-write) recover to the previous checkpoint with a typed
//! warning at *every* byte boundary; in-place damage (flipped bytes), stale
//! schema versions, unknown fields and spec mismatches are typed
//! [`CampaignError`]s — never a panic, never silent acceptance.

use std::fs;
use std::path::PathBuf;

use multiwalk::campaign::{frame_record, parse_records, ARTIFACT_SCHEMA, CHECKPOINT_SCHEMA};
use multiwalk::{Campaign, CampaignError, CampaignSpec};
use runtime_stats::Json;

/// A fresh scratch directory under the target-adjacent temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign_recovery_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Small spec that reliably finds solutions (n = 7 solves in tens of steps) so
/// the result log is exercised, with enough rounds to cross several checkpoints.
fn small_spec(dir: PathBuf) -> CampaignSpec {
    CampaignSpec {
        problem: "costas".to_string(),
        n: 7,
        walkers: 2,
        master_seed: 41,
        rounds: 6,
        checkpoint_interval: 150,
        checkpoint_every: 1,
        dir,
    }
}

fn open_fresh(spec: &CampaignSpec) -> Campaign {
    let (campaign, resumed) = Campaign::open(spec.clone()).expect("open");
    assert!(!resumed, "directory was expected to be empty");
    campaign
}

fn open_resumed(spec: &CampaignSpec) -> Campaign {
    let (campaign, resumed) = Campaign::open(spec.clone()).expect("resume");
    assert!(resumed, "a checkpoint was expected");
    campaign
}

/// Render an artifact section with `resumes_survived` dropped — the only field
/// that legitimately differs between an uninterrupted and a resumed lineage.
fn artifact_modulo_resumes(campaign: &Campaign) -> String {
    let Json::Object(mut map) = campaign.artifact_section() else {
        panic!("artifact section must be an object");
    };
    assert!(map.remove("resumes_survived").is_some());
    Json::Object(map).render()
}

/// Assert two finished campaigns are bit-identical: snapshots, stats, classes,
/// artifact (modulo resume count) and the on-disk result log.
fn assert_bit_identical(reference: &Campaign, resumed: &Campaign) {
    assert_eq!(reference.walker_snapshots(), resumed.walker_snapshots());
    assert_eq!(reference.walker_stats(), resumed.walker_stats());
    assert_eq!(reference.classes(), resumed.classes());
    assert_eq!(reference.solutions_found(), resumed.solutions_found());
    assert_eq!(reference.best_cost(), resumed.best_cost());
    assert_eq!(
        artifact_modulo_resumes(reference),
        artifact_modulo_resumes(resumed)
    );
    let ref_log = fs::read(reference.spec().log_path()).unwrap_or_default();
    let res_log = fs::read(resumed.spec().log_path()).unwrap_or_default();
    assert_eq!(ref_log, res_log, "result logs must be byte-identical");
    assert!(
        !ref_log.is_empty(),
        "the spec must actually find solutions for the log comparison to bite"
    );
}

/// Run the uninterrupted reference campaign to completion.
fn reference_run(name: &str) -> Campaign {
    let spec = small_spec(scratch_dir(name));
    let mut campaign = open_fresh(&spec);
    campaign.run_to_completion().expect("uninterrupted run");
    campaign
}

#[test]
fn resumed_campaign_is_bit_identical_to_uninterrupted_run() {
    let reference = reference_run("ref_a");

    // Interrupted lineage: 3 rounds, then the process "dies" (the campaign is
    // dropped with no finalization) and a new process resumes.
    let spec = small_spec(scratch_dir("resume_a"));
    let mut first = open_fresh(&spec);
    for _ in 0..3 {
        first.run_round().expect("round");
    }
    drop(first);
    let mut second = open_resumed(&spec);
    assert_eq!(second.rounds_done(), 3);
    assert_eq!(second.resumes_survived(), 1);
    second.run_to_completion().expect("resumed run");
    assert_bit_identical(&reference, &second);
    // checkpoints_written is part of the artifact comparison above, so the
    // interrupted lineage wrote exactly as many checkpoints in total.
}

#[test]
fn double_interruption_still_matches_the_reference() {
    let reference = reference_run("ref_b");
    let spec = small_spec(scratch_dir("resume_b"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    drop(c);
    let mut c = open_resumed(&spec);
    c.run_round().expect("round");
    c.run_round().expect("round");
    drop(c);
    let mut c = open_resumed(&spec);
    assert_eq!(c.resumes_survived(), 2, "resume count accumulates");
    c.run_to_completion().expect("resumed run");
    assert_eq!(c.resumes_survived(), 2);
    assert_bit_identical(&reference, &c);
}

#[test]
fn mid_flight_crash_after_log_append_rolls_back_and_rederives() {
    // n = 8 has ~50 symmetry classes, so round 3 still discovers new ones — the
    // crash must leave the log genuinely ahead of the checkpoint.
    let mut reference_spec = small_spec(scratch_dir("ref_c"));
    reference_spec.n = 8;
    let mut reference = open_fresh(&reference_spec);
    reference.run_to_completion().expect("uninterrupted run");

    let mut spec = small_spec(scratch_dir("resume_c"));
    spec.n = 8;
    let mut first = open_fresh(&spec);
    first.run_round().expect("round");
    first.run_round().expect("round");
    let log_at_checkpoint = fs::read(spec.log_path()).expect("log").len();
    // Round 3 "crashes" between the log append and the checkpoint write: the log
    // now runs ahead of the newest checkpoint.
    first
        .run_round_crash_before_checkpoint()
        .expect("faulty round");
    assert_eq!(first.rounds_done(), 3);
    drop(first);
    assert!(
        fs::read(spec.log_path()).expect("log").len() > log_at_checkpoint,
        "the faulty round must have appended log records for this test to bite"
    );

    let mut second = open_resumed(&spec);
    // Resumed from the round-2 checkpoint; round 3's log records were rolled back.
    assert_eq!(second.rounds_done(), 2);
    let rolled_back = second
        .warnings()
        .iter()
        .any(|w| w.contains("result-log bytes written after the checkpoint"));
    assert!(
        rolled_back,
        "rolling back post-checkpoint log records must warn: {:?}",
        second.warnings()
    );
    second.run_to_completion().expect("resumed run");
    assert_bit_identical(&reference, &second);
}

#[test]
fn torn_checkpoint_tail_recovers_to_previous_at_every_byte_boundary() {
    // Build a directory holding both a current (round 2) and a previous (round 1)
    // checkpoint, plus the reference state at round 1 to compare the fallback to.
    let spec = small_spec(scratch_dir("torn_every_byte"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    let at_round_1 = c.walker_snapshots();
    c.run_round().expect("round");
    drop(c);
    let current = fs::read(spec.checkpoint_path()).expect("current checkpoint");
    let prev = fs::read(spec.checkpoint_prev_path()).expect("previous checkpoint");
    let log = fs::read(spec.log_path()).unwrap_or_default();
    let reference = reference_run("ref_torn");

    for cut in 0..current.len() {
        // restore the directory, then tear the current checkpoint at `cut`
        fs::write(spec.checkpoint_path(), &current[..cut]).expect("tear");
        fs::write(spec.checkpoint_prev_path(), &prev).expect("restore prev");
        fs::write(spec.log_path(), &log).expect("restore log");
        let (resumed, was_resume) =
            Campaign::open(spec.clone()).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert!(was_resume);
        assert!(
            resumed
                .warnings()
                .iter()
                .any(|w| w.contains("torn tail") || w.contains("missing")),
            "cut {cut}: fallback must carry a typed warning, got {:?}",
            resumed.warnings()
        );
        // The fallback restored the previous checkpoint's state bit-for-bit;
        // determinism from an identical state is covered by the full-run tests,
        // so this comparison is the per-offset bit-identity statement.
        assert_eq!(resumed.rounds_done(), 1, "cut {cut}");
        assert_eq!(resumed.walker_snapshots(), at_round_1, "cut {cut}");

        // For a sample of offsets (and the empty-file edge), run the recovered
        // campaign to completion and compare against the uninterrupted run.
        if cut == 0 || cut % 977 == 11 {
            let mut resumed = resumed;
            resumed.run_to_completion().expect("recovered run");
            assert_bit_identical(&reference, &resumed);
        }
    }
}

#[test]
fn torn_result_log_tail_is_truncated_at_every_byte_offset() {
    let spec = small_spec(scratch_dir("torn_log"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    c.run_round().expect("round");
    drop(c);
    let log = fs::read(spec.log_path()).expect("log with records");
    assert!(
        !log.is_empty(),
        "n = 7 must have logged solutions by round 2"
    );
    // A plausible next record that the crash cut short at every possible length.
    let next = frame_record(r#"{"canonical":[1,3,2],"rank":0,"round":2,"solution":[1,3,2]}"#);
    for extra in 1..next.len() {
        let mut torn = log.clone();
        torn.extend_from_slice(&next.as_bytes()[..extra]);
        fs::write(spec.log_path(), &torn).expect("write torn log");
        let (resumed, _) =
            Campaign::open(spec.clone()).unwrap_or_else(|e| panic!("extra {extra}: {e}"));
        assert!(
            resumed
                .warnings()
                .iter()
                .any(|w| w.contains("result-log bytes written after the checkpoint")),
            "extra {extra}: truncation must warn"
        );
        let after = fs::read(spec.log_path()).expect("log");
        assert_eq!(
            after, log,
            "extra {extra}: log truncated back to the checkpoint"
        );
    }
}

#[test]
fn flipped_byte_in_the_checkpoint_is_a_typed_corruption_error() {
    let spec = small_spec(scratch_dir("flip"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    drop(c);
    let mut bytes = fs::read(spec.checkpoint_path()).expect("checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(spec.checkpoint_path(), &bytes).expect("write damaged checkpoint");
    let err = Campaign::open(spec).expect_err("in-place damage must not be repaired silently");
    assert!(
        matches!(
            err,
            CampaignError::Corrupt { .. } | CampaignError::Parse { .. }
        ),
        "want Corrupt/Parse, got {err:?}"
    );
}

#[test]
fn stale_schema_version_is_a_typed_error() {
    let spec = small_spec(scratch_dir("stale"));
    fs::create_dir_all(&spec.dir).expect("mkdir");
    let payload = r#"{"schema":"campaign_checkpoint/v0"}"#;
    fs::write(spec.checkpoint_path(), frame_record(payload)).expect("write stale checkpoint");
    let err = Campaign::open(spec).expect_err("stale schema must be rejected");
    assert_eq!(
        err,
        CampaignError::StaleSchema {
            found: "campaign_checkpoint/v0".to_string(),
            expected: CHECKPOINT_SCHEMA,
        }
    );
}

#[test]
fn committed_broken_sentinel_fixture_is_rejected() {
    // The deliberately-broken fixture is committed so the rejection path is
    // pinned against a byte-exact stale artifact, not one synthesized in-test.
    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/stale_checkpoint_v0.ckpt");
    let bytes = fs::read(&fixture).expect("committed fixture");
    // The fixture's framing is intact (it is stale, not torn) …
    let parsed = parse_records(&bytes).expect("fixture frames parse");
    assert_eq!(parsed.records.len(), 1);
    assert!(!parsed.torn);
    // … and loading it as a checkpoint is a typed stale-schema rejection.
    let spec = small_spec(scratch_dir("sentinel"));
    fs::create_dir_all(&spec.dir).expect("mkdir");
    fs::write(spec.checkpoint_path(), &bytes).expect("install fixture");
    let err = Campaign::open(spec).expect_err("sentinel must be rejected");
    assert!(
        matches!(err, CampaignError::StaleSchema { ref found, .. }
            if found == "campaign_checkpoint/v0"),
        "want StaleSchema, got {err:?}"
    );
}

#[test]
fn unknown_checkpoint_field_is_a_typed_error() {
    let spec = small_spec(scratch_dir("unknown_field"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    drop(c);
    let bytes = fs::read(spec.checkpoint_path()).expect("checkpoint");
    let parsed = parse_records(&bytes).expect("intact");
    let Json::Object(mut map) = Json::parse(&parsed.records[0]).expect("payload") else {
        panic!("checkpoint payload must be an object");
    };
    map.insert("from_the_future".to_string(), Json::UInt(9000));
    let doctored = frame_record(&Json::Object(map).render());
    fs::write(spec.checkpoint_path(), doctored).expect("write doctored checkpoint");
    let err = Campaign::open(spec).expect_err("unknown fields must be rejected");
    assert_eq!(
        err,
        CampaignError::UnknownField {
            field: "checkpoint.from_the_future".to_string()
        }
    );
}

#[test]
fn spec_mismatch_is_a_typed_error() {
    let spec = small_spec(scratch_dir("mismatch"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    drop(c);
    let mut wrong = spec.clone();
    wrong.n = 9;
    let err = Campaign::open(wrong).expect_err("different instance must be rejected");
    assert!(
        matches!(err, CampaignError::SpecMismatch { field: "n", .. }),
        "want SpecMismatch on n, got {err:?}"
    );
    let mut wrong = spec.clone();
    wrong.master_seed ^= 1;
    let err = Campaign::open(wrong).expect_err("different seed must be rejected");
    assert!(
        matches!(
            err,
            CampaignError::SpecMismatch {
                field: "master_seed",
                ..
            }
        ),
        "want SpecMismatch on master_seed, got {err:?}"
    );
}

#[test]
fn log_truncated_behind_the_checkpoint_is_a_typed_error() {
    let spec = small_spec(scratch_dir("log_behind"));
    let mut c = open_fresh(&spec);
    c.run_round().expect("round");
    c.run_round().expect("round");
    drop(c);
    let log = fs::read(spec.log_path()).expect("log");
    assert!(!log.is_empty());
    fs::write(spec.log_path(), &log[..log.len() / 2]).expect("truncate behind checkpoint");
    let err = Campaign::open(spec).expect_err("a log behind the checkpoint is unrecoverable");
    assert!(
        matches!(err, CampaignError::LogBehindCheckpoint { .. }),
        "want LogBehindCheckpoint, got {err:?}"
    );
}

#[test]
fn artifact_section_reports_the_campaign_honestly() {
    let spec = small_spec(scratch_dir("artifact"));
    let mut c = open_fresh(&spec);
    c.run_to_completion().expect("run");
    let section = c.artifact_section();
    assert_eq!(
        section.get("schema").and_then(Json::as_str),
        Some(ARTIFACT_SCHEMA)
    );
    let get = |k: &str| section.get(k).and_then(Json::as_u64).expect(k);
    assert_eq!(get("rounds"), spec.rounds);
    assert_eq!(get("walkers"), spec.walkers as u64);
    assert!(get("distinct_classes") <= get("solutions_found"));
    assert_eq!(get("log_records"), get("distinct_classes"));
    assert!(get("total_steps") <= spec.rounds * spec.walkers as u64 * spec.checkpoint_interval);
    assert_eq!(get("best_cost"), 0, "n = 7 must be solved");
    assert!(get("checkpoints_written") >= 1);
    // the log on disk agrees with the section
    let log = fs::read(spec.log_path()).expect("log");
    let parsed = parse_records(&log).expect("intact log");
    assert_eq!(parsed.records.len() as u64, get("log_records"));
    // every logged class is a canonical, distinct Costas array
    for payload in &parsed.records {
        let value = Json::parse(payload).expect("record JSON");
        let canonical: Vec<usize> = value
            .get("canonical")
            .and_then(Json::as_array)
            .expect("canonical")
            .iter()
            .map(|v| v.as_u64().expect("index") as usize)
            .collect();
        assert!(costas::is_costas_permutation(&canonical));
        assert_eq!(costas::canonical_form(&canonical), canonical);
    }
}

#[test]
fn fresh_open_discards_a_checkpointless_leftover_log() {
    let spec = small_spec(scratch_dir("leftover"));
    fs::create_dir_all(&spec.dir).expect("mkdir");
    fs::write(spec.log_path(), frame_record(r#"{"canonical":[1]}"#)).expect("leftover log");
    let (c, resumed) = Campaign::open(spec.clone()).expect("open");
    assert!(!resumed);
    assert!(!spec.log_path().exists(), "stale log discarded");
    assert!(c.warnings().iter().any(|w| w.contains("no checkpoint")));
}
