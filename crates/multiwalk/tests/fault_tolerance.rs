//! Runner-level fault tolerance: one panicking walk must never abort the race.
//!
//! Before this layer existed, `handle.join().expect("walk thread panicked")`
//! aborted the whole process the moment any walk died.  These tests prove the
//! replacement behaviour with the deterministic fault-injection harness
//! (`adaptive_search::fault`): under a seeded plan that kills a known subset
//! of walks, the surviving walks still race to a winner, the per-walk results
//! account for every rank, and the whole outcome replays identically.

use std::sync::Once;

use adaptive_search::fault::{self, Fault, FaultPlan};
use adaptive_search::{CostasProblem, Engine, PermutationProblem, SolveStatus};
use multiwalk::{CoopConfig, CooperativeRunner, ThreadRunner, WalkSpec};

/// One plan per test binary: every test in this file shares it, so the
/// process-global installation can never race between tests.
const PLAN: FaultPlan = FaultPlan {
    seed: 0xFA11_7001,
    panic_per_mille: 450,
    stall_per_mille: 0,
    stall_ms: 0,
    // Trip within the first ~50 ops: no order-12 walk ever solves that fast,
    // so an assigned panic always fires before the walk could finish — which
    // is what makes the per-rank prediction exact.
    min_op: 1,
    op_spread: 48,
};

static ARM: Once = Once::new();

fn chaos_spec(n: usize) -> WalkSpec {
    ARM.call_once(|| {
        fault::ensure_chaos_registered();
        fault::install_plan(PLAN);
    });
    WalkSpec::for_problem(fault::CHAOS_PROBLEM, n).expect("chaos problem registered")
}

/// Predict, per rank, whether the plan kills that walk — by rebuilding a
/// *bare* engine with the identical seeding (the initial configuration is a
/// pure function of `(spec, master_seed, rank)`) and hashing it through the
/// plan, exactly as the wrapper will.
fn predicted_panics(spec: &WalkSpec, master_seed: u64, walks: usize) -> Vec<bool> {
    (0..walks)
        .map(|rank| {
            let seed = spec.seeder(master_seed).seed_for_rank(rank as u64);
            let engine = Engine::new(CostasProblem::new(spec.n), spec.config.clone(), seed);
            matches!(
                PLAN.fault_for(engine.problem().configuration()),
                Fault::PanicAt { .. }
            )
        })
        .collect()
}

/// A master seed where the plan kills at least one walk and spares at least
/// one — the interesting regime for "survivors keep racing".
fn mixed_seed(spec: &WalkSpec, walks: usize) -> (u64, Vec<bool>) {
    for master_seed in 0..64u64 {
        let dead = predicted_panics(spec, master_seed, walks);
        if dead.iter().any(|&d| d) && dead.iter().any(|&d| !d) {
            return (master_seed, dead);
        }
    }
    panic!("no mixed seed in 0..64 under a 45% panic plan — implausible");
}

#[test]
fn a_panicking_walk_costs_only_itself_in_the_racing_runner() {
    let spec = chaos_spec(12);
    let walks = 4;
    let runner = ThreadRunner::new(spec.clone(), walks);
    let (master_seed, dead) = mixed_seed(&spec, walks);

    let result = runner.run(master_seed);
    assert_eq!(result.walk_results.len(), walks, "every rank accounted for");
    for (rank, died) in dead.iter().enumerate() {
        let status = result.walk_results[rank].status;
        if *died {
            assert_eq!(
                status,
                SolveStatus::Panicked,
                "rank {rank} was assigned a panic"
            );
        } else {
            assert_ne!(
                status,
                SolveStatus::Panicked,
                "rank {rank} was not assigned a panic"
            );
        }
    }
    assert_eq!(result.panicked_walks(), dead.iter().filter(|&&d| d).count());
    // The survivors still won the race: order 12 always solves unbounded.
    assert!(result.solved(), "survivors must still produce the winner");
    let winner = result.winner.expect("solved implies winner");
    assert!(!dead[winner], "a dead walk cannot win");
    assert!(costas::is_costas_permutation(
        result.solution.as_ref().unwrap()
    ));
}

#[test]
fn deterministic_runner_replays_identically_under_faults() {
    let spec = chaos_spec(12);
    let walks = 4;
    let runner = ThreadRunner::new(spec.clone(), walks);
    let (master_seed, dead) = mixed_seed(&spec, walks);

    let a = runner.run_deterministic(master_seed);
    let b = runner.run_deterministic(master_seed);
    assert_eq!(a.winner, b.winner, "same winner across replays");
    assert_eq!(a.solution, b.solution);
    assert!(a.solved(), "survivors solve order 12");
    assert!(!dead[a.winner.unwrap()]);
    for (rank, (ra, rb)) in a.walk_results.iter().zip(&b.walk_results).enumerate() {
        assert_eq!(ra.status, rb.status, "rank {rank} classifies identically");
        assert_eq!(ra.stats, rb.stats, "rank {rank} stats replay");
        assert_eq!(
            ra.status == SolveStatus::Panicked,
            dead[rank],
            "rank {rank} dies iff the plan says so"
        );
    }
}

#[test]
fn cooperative_thread_runner_survives_panicking_walks() {
    let spec = chaos_spec(12);
    let walks = 4;
    let (master_seed, dead) = mixed_seed(&spec, walks);
    let runner = CooperativeRunner::new(spec, walks).with_coop(CoopConfig::every(128));
    let result = runner.run_threads(master_seed);
    // The job must complete with per-walk stats for every rank and a winner
    // from the survivor set (order 12 with an unbounded budget always solves).
    assert_eq!(result.walk_stats.len(), walks);
    assert!(result.solved(), "cooperative survivors still win");
    assert!(!dead[result.winner.unwrap()], "a dead walk cannot win");
    assert!(costas::is_costas_permutation(
        result.solution.as_ref().unwrap()
    ));
}
