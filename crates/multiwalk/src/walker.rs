//! Walk specification: what every independent walk of a multi-walk job runs.

use adaptive_search::problems::{self, DynProblem};
use adaptive_search::{
    AsConfig, CostasModelConfig, CostasProblem, Engine, RequestError, SolveRequest,
};
use xrand::ChaoticSeeder;

/// The instance and configuration shared by every walk of a multi-walk job.
///
/// Walks are dispatched through the workload registry
/// ([`adaptive_search::problems`]): the spec names a registered problem by key and
/// carries the instance parameter, so the same runners drive the Costas Array
/// Problem, N-Queens, Langford, number partitioning, … without a per-model code
/// path.  The Costas key additionally honours the [`CostasModelConfig`] override
/// (basic vs. optimised cost model), which the ablation benches rely on.
///
/// Each walk differs only in its random seed, which is derived from the job's master
/// seed through the chaotic-map seeder (paper §III-B3) so that ranks 0, 1, 2, … get
/// decorrelated streams.
#[derive(Debug, Clone)]
pub struct WalkSpec {
    /// Registry key of the problem every walk solves (see
    /// [`adaptive_search::problems::registry`]).
    pub problem: &'static str,
    /// Instance parameter (per-model semantics: order, board side, pair count, …).
    pub n: usize,
    /// Cost-model configuration, applied when `problem == "costas"` (other models
    /// have no model options).
    pub model: CostasModelConfig,
    /// Engine configuration (the problem's registry default by default).
    pub config: AsConfig,
}

impl WalkSpec {
    /// The paper's configuration for a CAP instance of order `n`.
    pub fn costas(n: usize) -> Self {
        Self {
            problem: "costas",
            n,
            model: CostasModelConfig::optimized(),
            config: AsConfig::costas_defaults(n),
        }
    }

    /// A spec for any registered workload, with the model's default engine
    /// configuration from the registry.
    ///
    /// An unknown key is a typed [`RequestError`], not a panic, so callers that
    /// take keys from untrusted input (the `solverd` service, env knobs) can
    /// turn it into a structured reject.
    pub fn for_problem(key: &str, n: usize) -> Result<Self, RequestError> {
        let info = problems::find(key).ok_or_else(|| RequestError::UnknownProblem {
            key: key.to_string(),
        })?;
        Ok(Self {
            problem: info.key,
            n,
            model: CostasModelConfig::optimized(),
            config: (info.default_config)(n),
        })
    }

    /// A spec for one walk of a fan-out over a [`SolveRequest`]: the request's
    /// problem/instance with its budget as the per-walk iteration limit.
    ///
    /// Warm starts are not applied here — each walk starts from its own seeded
    /// random configuration (the request's `seed` becomes the fan-out master
    /// seed via [`WalkSpec::build_engine`]); a caller that wants the warm start
    /// raced too injects it into one rank's engine explicitly.
    pub fn from_request(request: &SolveRequest) -> Result<Self, RequestError> {
        let mut spec = Self::for_problem(&request.problem, request.n)?;
        spec.config.max_iterations = request.budget;
        Ok(spec)
    }

    /// Override the cost model (meaningful for the `"costas"` key only).
    pub fn with_model(mut self, model: CostasModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Override the engine configuration.
    pub fn with_config(mut self, config: AsConfig) -> Self {
        self.config = config;
        self
    }

    /// How often walks poll for termination (the paper's `c`).
    pub fn check_interval(&self) -> u64 {
        self.config.stop_check_interval
    }

    /// Build the chaotic seeder all walks of a job share.
    pub fn seeder(&self, master_seed: u64) -> ChaoticSeeder {
        ChaoticSeeder::new(master_seed)
    }

    /// Build one problem instance for this spec (registry dispatch; the Costas key
    /// honours the model override).
    pub fn build_problem(&self) -> DynProblem {
        if self.problem == "costas" {
            Box::new(CostasProblem::with_config(self.n, self.model))
        } else {
            problems::build(self.problem, self.n).expect("spec holds a registered key")
        }
    }

    /// Build the engine for a given rank of a job seeded with `master_seed`.
    pub fn build_engine(&self, master_seed: u64, rank: usize) -> Engine<DynProblem> {
        let seed = self.seeder(master_seed).seed_for_rank(rank as u64);
        Engine::new(self.build_problem(), self.config.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_search::PermutationProblem;

    #[test]
    fn spec_builds_engines_with_decorrelated_seeds() {
        let spec = WalkSpec::costas(10);
        let e0 = spec.build_engine(7, 0);
        let e1 = spec.build_engine(7, 1);
        // Different ranks start from different random configurations (overwhelmingly).
        assert_ne!(e0.problem().configuration(), e1.problem().configuration());
        // Same rank and master seed → identical start.
        let e0b = spec.build_engine(7, 0);
        assert_eq!(e0.problem().configuration(), e0b.problem().configuration());
    }

    #[test]
    fn spec_builders_apply_overrides() {
        let spec = WalkSpec::costas(9)
            .with_model(CostasModelConfig::basic())
            .with_config(AsConfig::builder().stop_check_interval(17).build());
        assert_eq!(spec.check_interval(), 17);
        let engine = spec.build_engine(1, 0);
        assert_eq!(engine.problem().size(), 9);
        assert_eq!(engine.problem().name(), "costas");
    }

    #[test]
    fn spec_dispatches_any_registered_problem_by_key() {
        for info in adaptive_search::problems::registry() {
            let n = info.test_sizes[info.test_sizes.len() - 1];
            let spec = WalkSpec::for_problem(info.key, n).expect("registered key");
            assert_eq!(spec.problem, info.key);
            let engine = spec.build_engine(3, 0);
            assert_eq!(engine.problem().name(), info.key);
            // the registry default config rode along
            assert_eq!(spec.config, (info.default_config)(n));
        }
    }

    #[test]
    fn unknown_keys_are_typed_errors() {
        let err = WalkSpec::for_problem("no-such-model", 5).expect_err("unknown key");
        assert_eq!(
            err,
            RequestError::UnknownProblem {
                key: "no-such-model".into()
            }
        );
        let request = SolveRequest::new("also-missing", 5, 1);
        assert!(WalkSpec::from_request(&request).is_err());
    }

    #[test]
    fn from_request_carries_budget_into_the_walk_config() {
        let request = SolveRequest::new("costas", 12, 7).with_budget(12_345);
        let spec = WalkSpec::from_request(&request).expect("registered key");
        assert_eq!(spec.problem, "costas");
        assert_eq!(spec.n, 12);
        assert_eq!(spec.config.max_iterations, 12_345);
        // everything else is the registry default
        let default = (adaptive_search::problems::find("costas")
            .unwrap()
            .default_config)(12);
        assert_eq!(spec.config.tabu_tenure, default.tabu_tenure);
    }

    #[test]
    fn seeder_is_shared_across_ranks() {
        let spec = WalkSpec::costas(8);
        let s = spec.seeder(5);
        assert_eq!(s.seed_for_rank(3), spec.seeder(5).seed_for_rank(3));
    }
}
