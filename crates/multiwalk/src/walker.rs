//! Walk specification: what every independent walk of a multi-walk job runs.

use adaptive_search::{AsConfig, CostasModelConfig, CostasProblem, Engine};
use xrand::ChaoticSeeder;

/// The instance and configuration shared by every walk of a multi-walk job.
///
/// Each walk differs only in its random seed, which is derived from the job's master
/// seed through the chaotic-map seeder (paper §III-B3) so that ranks 0, 1, 2, … get
/// decorrelated streams.
#[derive(Debug, Clone)]
pub struct WalkSpec {
    /// Order of the CAP instance.
    pub n: usize,
    /// Cost-model configuration (optimised by default).
    pub model: CostasModelConfig,
    /// Engine configuration (paper defaults by default).
    pub config: AsConfig,
}

impl WalkSpec {
    /// The paper's configuration for a CAP instance of order `n`.
    pub fn costas(n: usize) -> Self {
        Self {
            n,
            model: CostasModelConfig::optimized(),
            config: AsConfig::costas_defaults(n),
        }
    }

    /// Override the cost model.
    pub fn with_model(mut self, model: CostasModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Override the engine configuration.
    pub fn with_config(mut self, config: AsConfig) -> Self {
        self.config = config;
        self
    }

    /// How often walks poll for termination (the paper's `c`).
    pub fn check_interval(&self) -> u64 {
        self.config.stop_check_interval
    }

    /// Build the chaotic seeder all walks of a job share.
    pub fn seeder(&self, master_seed: u64) -> ChaoticSeeder {
        ChaoticSeeder::new(master_seed)
    }

    /// Build the engine for a given rank of a job seeded with `master_seed`.
    pub fn build_engine(&self, master_seed: u64, rank: usize) -> Engine<CostasProblem> {
        let seed = self.seeder(master_seed).seed_for_rank(rank as u64);
        let problem = CostasProblem::with_config(self.n, self.model);
        Engine::new(problem, self.config.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_search::PermutationProblem;

    #[test]
    fn spec_builds_engines_with_decorrelated_seeds() {
        let spec = WalkSpec::costas(10);
        let e0 = spec.build_engine(7, 0);
        let e1 = spec.build_engine(7, 1);
        // Different ranks start from different random configurations (overwhelmingly).
        assert_ne!(e0.problem().configuration(), e1.problem().configuration());
        // Same rank and master seed → identical start.
        let e0b = spec.build_engine(7, 0);
        assert_eq!(e0.problem().configuration(), e0b.problem().configuration());
    }

    #[test]
    fn spec_builders_apply_overrides() {
        let spec = WalkSpec::costas(9)
            .with_model(CostasModelConfig::basic())
            .with_config(AsConfig::builder().stop_check_interval(17).build());
        assert_eq!(spec.check_interval(), 17);
        let engine = spec.build_engine(1, 0);
        assert_eq!(engine.problem().size(), 9);
        assert!(!engine.problem().config().dedicated_reset);
    }

    #[test]
    fn seeder_is_shared_across_ranks() {
        let spec = WalkSpec::costas(8);
        let s = spec.seeder(5);
        assert_eq!(s.seed_for_rank(3), spec.seeder(5).seed_for_rank(3));
    }
}
