//! Cooperative multi-walk: elite-solution exchange and coordinated restarts.
//!
//! The paper's scheme (§V) is *independent* multi-walk — no communication during the
//! search.  This module implements the next rung of the scaling ladder: walks
//! periodically share their **best configuration** and the laggards adopt it (via
//! [`adaptive_search::Engine::inject_candidate`]), and when the whole job stagnates
//! every walk performs a **coordinated restart**
//! (via [`adaptive_search::Engine::schedule_restart`]).
//!
//! The exchange protocol is the same on all three substrates:
//!
//! 1. every walk runs `exchange_interval` iterations (the cooperative analogue of the
//!    paper's termination-check period `c`);
//! 2. the globally best `(cost, rank, configuration)` is determined — behind a mutex
//!    on the thread substrate, with [`mpi_sim::collectives::allreduce_min`] on the
//!    message-passing substrate, by direct inspection on the virtual cluster;
//! 3. every other walk is *offered* the elite and adopts it iff it strictly improves
//!    on the walk's own current cost;
//! 4. if the global best cost has not improved for `stagnation_limit` consecutive
//!    exchanges, every walk schedules a restart at its next iteration boundary.
//!
//! **When does cooperation help?**  Elite exchange pays off when intermediate costs
//! carry information about proximity to a solution — deep, hard instances where a
//! low-cost configuration is a genuinely better springboard.  On small instances the
//! independent min-of-K effect already collapses the runtime distribution, and
//! injection merely *correlates* the walks, shrinking the effective sample the
//! min-of-K draws from (see the crate docs and README for the measured cross-over).
//! The `coop_vs_independent` harness in the `bench` crate quantifies the trade-off.
//!
//! Determinism: [`CooperativeRunner::run_virtual`] interleaves walks on the virtual
//! clock exactly like [`crate::VirtualCluster::run_exact`] and exchanges at round
//! boundaries, so the entire cooperative trajectory — winner, iteration count,
//! adoption pattern — is a pure function of the master seed.
//! [`CooperativeRunner::run_mpi`] performs the same rounds through blocking
//! collectives and is equally seed-deterministic; only
//! [`CooperativeRunner::run_threads`] trades determinism for real wall-clock
//! parallelism (exchanges are asynchronous there).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use adaptive_search::{PermutationProblem, SearchStats, StepOutcome};
use mpi_sim::collectives::allreduce_min;
use mpi_sim::run_world_with_threads;

use crate::virtual_cluster::VirtualCluster;
use crate::walker::WalkSpec;

/// Tuning of the cooperative exchange layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoopConfig {
    /// Iterations every walk executes between two exchanges (the cooperative
    /// analogue of the paper's termination-check period `c`).
    pub exchange_interval: u64,
    /// Coordinated-restart trigger: after this many consecutive exchange rounds
    /// without any improvement of the global best cost, every walk restarts.
    /// `None` disables coordinated restarts.
    pub stagnation_limit: Option<u64>,
}

impl Default for CoopConfig {
    fn default() -> Self {
        Self {
            exchange_interval: 256,
            stagnation_limit: Some(64),
        }
    }
}

impl CoopConfig {
    /// Exchange every `interval` iterations.
    ///
    /// # Panics
    /// Panics if `interval == 0`.
    pub fn every(interval: u64) -> Self {
        assert!(interval > 0, "exchange interval must be at least 1");
        Self {
            exchange_interval: interval,
            ..Self::default()
        }
    }

    /// Override the stagnation limit (`None` disables coordinated restarts).
    pub fn with_stagnation_limit(mut self, limit: Option<u64>) -> Self {
        self.stagnation_limit = limit;
        self
    }
}

/// Outcome of one cooperative multi-walk job.
#[derive(Debug, Clone)]
pub struct CoopResult {
    /// The solution found (a permutation of `1..=n`), if any walk succeeded.
    pub solution: Option<Vec<usize>>,
    /// Rank of the winning walk.
    pub winner: Option<usize>,
    /// Iterations of the winning walk at the moment it solved (the critical path in
    /// the machine-independent unit); the per-walk budget when nobody solved.
    pub winner_iterations: u64,
    /// Total iterations executed across all walks (the work performed).
    pub total_iterations: u64,
    /// Exchange rounds completed (per-walk rounds on the synchronous substrates,
    /// individual exchange operations on the thread substrate).
    pub exchanges: u64,
    /// Elite configurations adopted across all walks.
    pub adoptions: u64,
    /// Coordinated-restart events triggered by stagnation.
    pub coordinated_restarts: u64,
    /// Number of walks.
    pub walks: usize,
    /// Wall-clock time of the whole job.
    pub elapsed: Duration,
    /// Virtual seconds on the simulated platform (virtual-cluster substrate only).
    pub virtual_seconds: Option<f64>,
    /// Per-walk engine statistics, indexed by rank.
    pub walk_stats: Vec<SearchStats>,
}

impl CoopResult {
    /// Did any walk find a solution?
    pub fn solved(&self) -> bool {
        self.solution.is_some()
    }
}

/// Message exchanged by the `mpi-sim` substrate: `(cost, rank, configuration)`.
/// The lexicographic `Ord` of the tuple gives the documented lowest-rank tie-break.
type Elite = (u64, usize, Vec<usize>);

/// Runs `walks` cooperating Adaptive Search walks.
#[derive(Debug, Clone)]
pub struct CooperativeRunner {
    spec: WalkSpec,
    walks: usize,
    coop: CoopConfig,
}

impl CooperativeRunner {
    /// Create a runner for `walks` cooperating walks of `spec` with the default
    /// exchange configuration.
    ///
    /// # Panics
    /// Panics if `walks == 0`.
    pub fn new(spec: WalkSpec, walks: usize) -> Self {
        assert!(walks > 0, "at least one walk is required");
        Self {
            spec,
            walks,
            coop: CoopConfig::default(),
        }
    }

    /// Override the exchange configuration.
    ///
    /// # Panics
    /// Panics if the exchange interval is zero.
    pub fn with_coop(mut self, coop: CoopConfig) -> Self {
        assert!(
            coop.exchange_interval > 0,
            "exchange interval must be at least 1"
        );
        self.coop = coop;
        self
    }

    /// The walk specification.
    pub fn spec(&self) -> &WalkSpec {
        &self.spec
    }

    /// Number of walks.
    pub fn walks(&self) -> usize {
        self.walks
    }

    /// The exchange configuration.
    pub fn coop(&self) -> &CoopConfig {
        &self.coop
    }

    /// Deterministic cooperative run on the virtual clock: walks are interleaved in
    /// blocks of `exchange_interval` iterations, and the exchange happens between
    /// rounds, exactly once per round, in rank order.  Same master seed ⇒ identical
    /// winner, winning iteration count and adoption pattern.
    ///
    /// The `cluster` supplies the platform profile used to convert the virtual
    /// critical path into seconds (as in [`VirtualCluster::run_exact`]).
    pub fn run_virtual(&self, cluster: &VirtualCluster, master_seed: u64) -> CoopResult {
        let start = Instant::now();
        let interval = self.coop.exchange_interval;
        let mut engines: Vec<_> = (0..self.walks)
            .map(|rank| self.spec.build_engine(master_seed, rank))
            .collect();
        let mut iters = vec![0u64; self.walks];
        let mut winner: Option<(u64, usize)> = None; // (iterations, rank), lexicographic
        let mut solution: Option<Vec<usize>> = None;
        let mut total: u64 = 0;
        let mut exchanges: u64 = 0;
        let mut adoptions: u64 = 0;
        let mut coordinated_restarts: u64 = 0;
        let mut global_best = u64::MAX;
        let mut stagnant: u64 = 0;
        let budget = self.spec.config.max_iterations;
        // Iterations completed by every still-searching walk (uniform across walks:
        // they all run the same capped blocks until someone solves).
        let mut completed: u64 = 0;

        while completed < budget {
            // The final block is capped so no walk overruns the per-walk budget.
            let block = interval.min(budget - completed);
            // Every walk executes one block; a solving walk ends its block early,
            // the others only notice at the exchange boundary (as in `run_exact`).
            for (rank, engine) in engines.iter_mut().enumerate() {
                for step_in_block in 0..block {
                    if engine.step() == StepOutcome::Solved {
                        let at = iters[rank] + step_in_block + 1;
                        iters[rank] = at;
                        total += step_in_block + 1;
                        match winner {
                            Some(best) if best <= (at, rank) => {}
                            _ => {
                                winner = Some((at, rank));
                                solution = Some(engine.problem().configuration().to_vec());
                            }
                        }
                        break;
                    }
                    if step_in_block == block - 1 {
                        iters[rank] += block;
                        total += block;
                    }
                }
            }
            completed += block;
            if winner.is_some() {
                break;
            }

            // Exchange: the best (cost, rank) wins; every strictly worse walk is
            // offered it (a tied-or-better walk could never adopt, so the offer —
            // and its O(n²) cost evaluation — is skipped, as on the mpi substrate).
            exchanges += 1;
            let (best_rank, best_cost) = engines
                .iter()
                .map(|e| e.current_cost())
                .enumerate()
                .min_by_key(|&(rank, cost)| (cost, rank))
                .expect("at least one walk");
            let elite = engines[best_rank].problem().configuration().to_vec();
            for (rank, engine) in engines.iter_mut().enumerate() {
                let threshold = engine.current_cost();
                if rank != best_rank
                    && best_cost < threshold
                    && engine.inject_candidate(&elite, threshold).adopted()
                {
                    adoptions += 1;
                }
            }

            // Coordinated restart on stagnation of the global best.
            if best_cost < global_best {
                global_best = best_cost;
                stagnant = 0;
            } else if let Some(limit) = self.coop.stagnation_limit {
                stagnant += 1;
                if stagnant >= limit {
                    for engine in engines.iter_mut() {
                        engine.schedule_restart();
                    }
                    coordinated_restarts += 1;
                    stagnant = 0;
                    global_best = u64::MAX;
                }
            }
        }

        let (winner_iterations, winner_rank) = match winner {
            Some((at, rank)) => (at, Some(rank)),
            None => (self.spec.config.max_iterations, None),
        };
        CoopResult {
            solution,
            winner: winner_rank,
            winner_iterations,
            total_iterations: total,
            exchanges,
            adoptions,
            coordinated_restarts,
            walks: self.walks,
            elapsed: start.elapsed(),
            virtual_seconds: Some(
                cluster
                    .platform()
                    .seconds_for(winner_iterations, cluster.reference_rate()),
            ),
            walk_stats: engines.iter().map(|e| e.stats().clone()).collect(),
        }
    }

    /// Cooperative run over `mpi-sim` ranks: every rank runs `exchange_interval`
    /// iterations, then joins an [`allreduce_min`] carrying `(cost, rank, config)`.
    /// A solved rank contributes cost 0, so the same round's reduction terminates
    /// every rank; ties go to the lowest rank by the tuple ordering.  The round
    /// structure makes this substrate seed-deterministic too, despite running on
    /// real threads.
    pub fn run_mpi(&self, master_seed: u64) -> CoopResult {
        self.run_mpi_with_threads(master_seed, self.walks)
    }

    /// Like [`CooperativeRunner::run_mpi`] with an explicit cap on OS threads.
    ///
    /// Unlike the independent `MpiRunner`, the cooperative protocol is synchronous:
    /// every rank must be alive to join each exchange round, so `max_threads` must be
    /// at least `walks`.
    ///
    /// # Panics
    /// Panics if `max_threads < walks` (a smaller cap would deadlock the first
    /// exchange).
    pub fn run_mpi_with_threads(&self, master_seed: u64, max_threads: usize) -> CoopResult {
        assert!(
            max_threads >= self.walks,
            "cooperative exchange is synchronous: need max_threads >= walks"
        );
        let start = Instant::now();
        let interval = self.coop.exchange_interval;
        let stagnation_limit = self.coop.stagnation_limit;
        let spec = self.spec.clone();

        struct RankReport {
            iterations: u64,
            solved: bool,
            solution: Option<Vec<usize>>,
            rounds: u64,
            coordinated_restarts: u64,
            stats: SearchStats,
        }

        let reports: Vec<RankReport> =
            run_world_with_threads::<Elite, _, _>(self.walks, max_threads, move |comm| {
                let rank = comm.rank();
                let mut engine = spec.build_engine(master_seed, rank);
                let budget = spec.config.max_iterations;
                let mut iterations = 0u64;
                let mut solved = false;
                let mut rounds = 0u64;
                let mut restarts = 0u64;
                let mut global_best = u64::MAX;
                let mut stagnant = 0u64;
                let mut winning: Option<Vec<usize>> = None;
                // Every rank computes the same capped block sequence, so all ranks
                // run the same number of exchange rounds and reach the budget
                // exactly — no rank can overrun it or miss a collective.
                while iterations < budget {
                    let block = interval.min(budget - iterations);
                    for _ in 0..block {
                        iterations += 1;
                        if engine.step() == StepOutcome::Solved {
                            solved = true;
                            break;
                        }
                    }
                    let mine: Elite = (
                        engine.current_cost(),
                        rank,
                        engine.problem().configuration().to_vec(),
                    );
                    let (best_cost, _best_rank, best_config) =
                        allreduce_min(comm, mine).expect("exchange round");
                    rounds += 1;
                    if best_cost == 0 {
                        winning = Some(best_config);
                        break;
                    }
                    if best_cost < engine.current_cost() {
                        let threshold = engine.current_cost();
                        let _ = engine.inject_candidate(&best_config, threshold);
                    }
                    // Every rank sees the same reduction, so the stagnation counter —
                    // and therefore the restart round — is identical on all ranks:
                    // the restarts are coordinated without extra messages.
                    if best_cost < global_best {
                        global_best = best_cost;
                        stagnant = 0;
                    } else if let Some(limit) = stagnation_limit {
                        stagnant += 1;
                        if stagnant >= limit {
                            engine.schedule_restart();
                            restarts += 1;
                            stagnant = 0;
                            global_best = u64::MAX;
                        }
                    }
                }
                RankReport {
                    iterations,
                    solved,
                    solution: winning,
                    rounds,
                    coordinated_restarts: restarts,
                    stats: engine.stats().clone(),
                }
            });

        let winner = reports.iter().position(|r| r.solved);
        let solution = reports.iter().find_map(|r| r.solution.clone());
        let winner_iterations = winner
            .map(|w| reports[w].iterations)
            .unwrap_or(self.spec.config.max_iterations);
        CoopResult {
            solution,
            winner,
            winner_iterations,
            total_iterations: reports.iter().map(|r| r.iterations).sum(),
            exchanges: reports.iter().map(|r| r.rounds).max().unwrap_or(0),
            adoptions: reports.iter().map(|r| r.stats.injections_adopted).sum(),
            coordinated_restarts: reports
                .iter()
                .map(|r| r.coordinated_restarts)
                .max()
                .unwrap_or(0),
            walks: self.walks,
            elapsed: start.elapsed(),
            virtual_seconds: None,
            walk_stats: reports.into_iter().map(|r| r.stats).collect(),
        }
    }

    /// Cooperative run on OS threads: a shared elite pool (configuration behind a
    /// [`Mutex`], best cost in an [`AtomicU64`]) replaces the collectives, so
    /// exchanges are asynchronous — each walk consults the pool at its own pace,
    /// every `exchange_interval` of its own iterations.  This delivers real
    /// wall-clock speed-up but is *not* seed-deterministic (the interleaving of
    /// publications and adoptions depends on the scheduler).
    pub fn run_threads(&self, master_seed: u64) -> CoopResult {
        let start = Instant::now();
        let interval = self.coop.exchange_interval;
        let stagnation_limit = self.coop.stagnation_limit;
        let walks = self.walks;

        struct ElitePool {
            best_cost: AtomicU64,
            best: Mutex<Option<Vec<usize>>>,
            found: AtomicBool,
            winner: Mutex<Option<(usize, Vec<usize>)>>,
            /// Restart generation: bumped once per coordinated-restart event.
            epoch: AtomicU64,
            /// Exchange operations performed so far, across all walks.
            exchange_ops: AtomicU64,
            /// Value of `exchange_ops` when the pool best last improved (or the pool
            /// was last reset); the stagnation window is measured against this.
            last_improvement: AtomicU64,
        }
        let pool = ElitePool {
            best_cost: AtomicU64::new(u64::MAX),
            best: Mutex::new(None),
            found: AtomicBool::new(false),
            winner: Mutex::new(None),
            epoch: AtomicU64::new(0),
            exchange_ops: AtomicU64::new(0),
            last_improvement: AtomicU64::new(0),
        };

        struct WalkReport {
            rank: usize,
            iterations: u64,
            exchange_ops: u64,
            stats: SearchStats,
        }

        let reports: Vec<WalkReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..walks)
                .map(|rank| {
                    let spec = self.spec.clone();
                    let pool = &pool;
                    scope.spawn(move || {
                        // Panic isolation: a dying walk yields an empty report
                        // (zero iterations, default stats) and the cooperative
                        // race continues on the survivors — never an abort.
                        catch_unwind(AssertUnwindSafe(move || {
                            let mut engine = spec.build_engine(master_seed, rank);
                            let budget = spec.config.max_iterations;
                            let mut iterations = 0u64;
                            let mut ops = 0u64;
                            let mut seen_epoch = 0u64;
                            'walk: while iterations < budget {
                                let block = interval.min(budget - iterations);
                                for _ in 0..block {
                                    iterations += 1;
                                    if engine.step() == StepOutcome::Solved {
                                        let mut guard = pool
                                            .winner
                                            .lock()
                                            .unwrap_or_else(|poison| poison.into_inner());
                                        if guard.is_none() {
                                            *guard = Some((
                                                rank,
                                                engine.problem().configuration().to_vec(),
                                            ));
                                        }
                                        drop(guard);
                                        pool.found.store(true, Ordering::SeqCst);
                                        break 'walk;
                                    }
                                }
                                if pool.found.load(Ordering::SeqCst) {
                                    break;
                                }

                                // Exchange: publish if better than the pool, else adopt
                                // the pool's elite when it is better than us.
                                ops += 1;
                                let op = pool.exchange_ops.fetch_add(1, Ordering::SeqCst) + 1;
                                let my_cost = engine.current_cost();
                                if my_cost < pool.best_cost.load(Ordering::SeqCst) {
                                    let mut guard = pool
                                        .best
                                        .lock()
                                        .unwrap_or_else(|poison| poison.into_inner());
                                    // Re-check under the lock: another walk may have
                                    // published a better elite in the meantime.
                                    if my_cost < pool.best_cost.load(Ordering::SeqCst) {
                                        pool.best_cost.store(my_cost, Ordering::SeqCst);
                                        *guard = Some(engine.problem().configuration().to_vec());
                                        pool.last_improvement.store(op, Ordering::SeqCst);
                                    }
                                } else if pool.best_cost.load(Ordering::SeqCst) < my_cost {
                                    let elite = pool
                                        .best
                                        .lock()
                                        .unwrap_or_else(|poison| poison.into_inner())
                                        .clone();
                                    if let Some(elite) = elite {
                                        let _ = engine.inject_candidate(&elite, my_cost);
                                    }
                                }

                                // Stagnation: no pool improvement for `limit` exchange
                                // operations *per walk* → bump the restart epoch (one
                                // walk wins the CAS; everyone observes the new epoch).
                                if let Some(limit) = stagnation_limit {
                                    let since = op.saturating_sub(
                                        pool.last_improvement.load(Ordering::SeqCst),
                                    );
                                    if since >= limit.saturating_mul(walks as u64) {
                                        let current = pool.epoch.load(Ordering::SeqCst);
                                        if pool
                                            .epoch
                                            .compare_exchange(
                                                current,
                                                current + 1,
                                                Ordering::SeqCst,
                                                Ordering::SeqCst,
                                            )
                                            .is_ok()
                                        {
                                            // Reset the pool so the stale elite is not
                                            // re-adopted right after the restart.
                                            let mut guard = pool
                                                .best
                                                .lock()
                                                .unwrap_or_else(|poison| poison.into_inner());
                                            pool.best_cost.store(u64::MAX, Ordering::SeqCst);
                                            *guard = None;
                                            pool.last_improvement.store(op, Ordering::SeqCst);
                                        }
                                    }
                                }
                                let epoch = pool.epoch.load(Ordering::SeqCst);
                                if epoch != seen_epoch {
                                    seen_epoch = epoch;
                                    engine.schedule_restart();
                                }
                            }
                            WalkReport {
                                rank,
                                iterations,
                                exchange_ops: ops,
                                stats: engine.stats().clone(),
                            }
                        }))
                        .unwrap_or_else(|_| WalkReport {
                            rank,
                            iterations: 0,
                            exchange_ops: 0,
                            stats: SearchStats::default(),
                        })
                    })
                })
                .collect();
            let mut reports: Vec<WalkReport> = handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.join().unwrap_or_else(|_| WalkReport {
                        rank,
                        iterations: 0,
                        exchange_ops: 0,
                        stats: SearchStats::default(),
                    })
                })
                .collect();
            reports.sort_by_key(|r| r.rank);
            reports
        });

        let winner_record = pool
            .winner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone();
        let winner = winner_record.as_ref().map(|(rank, _)| *rank);
        CoopResult {
            solution: winner_record.map(|(_, sol)| sol),
            winner,
            winner_iterations: winner
                .map(|w| reports[w].iterations)
                .unwrap_or(self.spec.config.max_iterations),
            total_iterations: reports.iter().map(|r| r.iterations).sum(),
            exchanges: reports.iter().map(|r| r.exchange_ops).sum(),
            adoptions: reports.iter().map(|r| r.stats.injections_adopted).sum(),
            coordinated_restarts: pool.epoch.load(Ordering::SeqCst),
            walks: self.walks,
            elapsed: start.elapsed(),
            virtual_seconds: None,
            walk_stats: reports.into_iter().map(|r| r.stats).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformProfile;
    use adaptive_search::AsConfig;
    use costas::is_costas_permutation;

    fn cluster() -> VirtualCluster {
        VirtualCluster::new(PlatformProfile::local())
    }

    fn coop_spec(n: usize) -> WalkSpec {
        WalkSpec::costas(n)
    }

    #[test]
    fn virtual_substrate_solves_and_is_seed_deterministic() {
        let runner = CooperativeRunner::new(coop_spec(12), 4).with_coop(CoopConfig::every(128));
        let a = runner.run_virtual(&cluster(), 2024);
        let b = runner.run_virtual(&cluster(), 2024);
        assert!(a.solved());
        assert!(is_costas_permutation(a.solution.as_ref().unwrap()));
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.winner_iterations, b.winner_iterations);
        assert_eq!(a.total_iterations, b.total_iterations);
        assert_eq!(a.adoptions, b.adoptions);
        assert_eq!(a.solution, b.solution);
        assert!(a.virtual_seconds.unwrap() > 0.0);
    }

    #[test]
    fn virtual_substrate_different_seeds_differ() {
        let runner = CooperativeRunner::new(coop_spec(12), 4);
        let a = runner.run_virtual(&cluster(), 1);
        let b = runner.run_virtual(&cluster(), 2);
        // Not a hard guarantee, but over full CAP-12 trajectories a collision of the
        // winning iteration count *and* the solution is vanishingly unlikely.
        assert!(a.winner_iterations != b.winner_iterations || a.solution != b.solution);
    }

    #[test]
    fn mpi_substrate_solves_and_matches_its_own_replay() {
        let runner = CooperativeRunner::new(coop_spec(11), 3).with_coop(CoopConfig::every(64));
        let a = runner.run_mpi(7);
        let b = runner.run_mpi(7);
        assert!(a.solved());
        assert!(is_costas_permutation(a.solution.as_ref().unwrap()));
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.winner_iterations, b.winner_iterations);
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn thread_substrate_solves() {
        let runner = CooperativeRunner::new(coop_spec(12), 4).with_coop(CoopConfig::every(64));
        let result = runner.run_threads(99);
        assert!(result.solved());
        assert!(is_costas_permutation(result.solution.as_ref().unwrap()));
        assert!(result.winner.unwrap() < 4);
        assert!(result.total_iterations >= result.winner_iterations);
    }

    #[test]
    fn exchange_offers_are_made_on_the_virtual_substrate() {
        // A hard-ish instance with a short exchange interval: exchanges must happen,
        // and offers must be recorded in the engine stats.
        let spec = coop_spec(16).with_config(AsConfig::builder().max_iterations(4_000).build());
        let runner = CooperativeRunner::new(spec, 4).with_coop(CoopConfig::every(100));
        let result = runner.run_virtual(&cluster(), 5);
        assert!(result.exchanges > 0);
        let offered: u64 = result.walk_stats.iter().map(|s| s.injections_offered).sum();
        assert!(offered > 0, "exchange rounds must offer elites");
        assert_eq!(
            result.adoptions,
            result
                .walk_stats
                .iter()
                .map(|s| s.injections_adopted)
                .sum::<u64>()
        );
    }

    #[test]
    fn stagnation_triggers_coordinated_restarts_on_the_virtual_substrate() {
        // CAP 19+ will not be solved in 3k iterations; with a stagnation limit of 2
        // rounds the job must restart repeatedly.
        let spec = coop_spec(19).with_config(AsConfig::builder().max_iterations(3_000).build());
        let runner = CooperativeRunner::new(spec, 3)
            .with_coop(CoopConfig::every(50).with_stagnation_limit(Some(2)));
        let result = runner.run_virtual(&cluster(), 3);
        assert!(!result.solved());
        assert!(result.coordinated_restarts > 0);
        let engine_restarts: u64 = result
            .walk_stats
            .iter()
            .map(|s| s.coordinated_restarts)
            .sum();
        assert!(
            engine_restarts > 0,
            "scheduled restarts must reach the engines"
        );
    }

    #[test]
    fn unsolvable_budget_reports_failure() {
        let spec = coop_spec(18).with_config(AsConfig::builder().max_iterations(200).build());
        let runner = CooperativeRunner::new(spec, 3).with_coop(CoopConfig::every(50));
        let v = runner.run_virtual(&cluster(), 1);
        assert!(!v.solved());
        assert_eq!(v.winner, None);
        assert_eq!(v.winner_iterations, 200);
        let m = runner.run_mpi(1);
        assert!(!m.solved());
        assert_eq!(m.winner, None);
    }

    #[test]
    fn budget_is_exact_when_the_interval_does_not_divide_it() {
        // 100 iterations with exchanges every 64: the final block must be capped at
        // 36 on every substrate — no walk may overrun the per-walk budget.
        let spec = coop_spec(19).with_config(AsConfig::builder().max_iterations(100).build());
        let runner = CooperativeRunner::new(spec, 3).with_coop(CoopConfig::every(64));
        let v = runner.run_virtual(&cluster(), 11);
        assert!(!v.solved());
        assert_eq!(v.winner_iterations, 100);
        assert_eq!(v.total_iterations, 300);
        for s in &v.walk_stats {
            assert_eq!(s.iterations, 100, "virtual walk ran past its budget");
        }
        let m = runner.run_mpi(11);
        assert!(!m.solved());
        for s in &m.walk_stats {
            assert_eq!(s.iterations, 100, "mpi walk ran past its budget");
        }
        let t = runner.run_threads(11);
        assert!(!t.solved());
        for s in &t.walk_stats {
            assert_eq!(s.iterations, 100, "thread walk ran past its budget");
        }
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_walks_rejected() {
        let _ = CooperativeRunner::new(coop_spec(5), 0);
    }

    #[test]
    #[should_panic(expected = "exchange interval")]
    fn zero_interval_rejected() {
        let _ = CoopConfig::every(0);
    }

    #[test]
    #[should_panic(expected = "synchronous")]
    fn thread_cap_below_walks_rejected_on_mpi_substrate() {
        let runner = CooperativeRunner::new(coop_spec(8), 4);
        let _ = runner.run_mpi_with_threads(1, 2);
    }
}
