//! Thread-backed independent multi-walk: one OS thread per walk, first solution wins.
//!
//! This is the execution mode a user with a multi-core workstation wants: it delivers
//! real wall-clock speed-up, bounded by the number of hardware threads.  Termination
//! mirrors the paper's scheme — each walk checks a shared flag every `c` iterations
//! (the flag plays the role of the MPI "solution found" message) and stops as soon as
//! it is raised.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::Mutex;

use adaptive_search::termination::{AnyStop, CancelToken, DeadlineStop, FlagStop, StopCondition};
use adaptive_search::{SolveResult, SolveStatus};

use crate::walker::WalkSpec;

/// Outcome of one multi-walk job.
#[derive(Debug, Clone)]
pub struct MultiWalkResult {
    /// The solution found (a permutation of `1..=n`), if any walk succeeded.
    pub solution: Option<Vec<usize>>,
    /// Rank of the first walk that found a solution.
    pub winner: Option<usize>,
    /// Wall-clock time of the whole job.
    pub elapsed: Duration,
    /// Number of walks that were run.
    pub walks: usize,
    /// Per-walk results, indexed by rank.
    pub walk_results: Vec<SolveResult>,
}

impl MultiWalkResult {
    /// Did any walk find a solution?
    pub fn solved(&self) -> bool {
        self.solution.is_some()
    }

    /// Total iterations summed over all walks (the "work" of the job).
    pub fn total_iterations(&self) -> u64 {
        self.walk_results.iter().map(|r| r.stats.iterations).sum()
    }

    /// Iterations of the winning walk (the "critical path" in the machine-independent
    /// unit used by the virtual cluster).
    pub fn winner_iterations(&self) -> Option<u64> {
        self.winner.map(|w| self.walk_results[w].stats.iterations)
    }

    /// How many walks died to an isolated panic (their results are synthetic
    /// [`SolveResult::panicked`] placeholders).
    pub fn panicked_walks(&self) -> usize {
        self.walk_results
            .iter()
            .filter(|r| r.status == SolveStatus::Panicked)
            .count()
    }
}

/// The shared winner record: rank and solution of the first walk to finish.
type WinnerCell = Arc<Mutex<Option<(usize, Vec<usize>)>>>;

/// Runs `workers` independent walks on OS threads.
#[derive(Debug, Clone)]
pub struct ThreadRunner {
    spec: WalkSpec,
    workers: usize,
}

impl ThreadRunner {
    /// Create a runner for `workers` concurrent walks of `spec`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(spec: WalkSpec, workers: usize) -> Self {
        assert!(workers > 0, "at least one walk is required");
        Self { spec, workers }
    }

    /// The walk specification.
    pub fn spec(&self) -> &WalkSpec {
        &self.spec
    }

    /// Number of concurrent walks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run the job: all walks start from rank-specific chaotic seeds derived from
    /// `master_seed`, and the first walk to reach cost zero raises the shared flag.
    pub fn run(&self, master_seed: u64) -> MultiWalkResult {
        self.run_with_deadline(master_seed, None)
    }

    /// [`ThreadRunner::run`] with an optional wall-clock bound: every walk polls
    /// both the shared first-solution flag *and* the deadline at its usual check
    /// interval, so a request-scoped fan-out (the `solverd` service) can enforce
    /// per-request deadlines without a watchdog thread.  A job whose deadline
    /// fires before any walk solves returns unsolved with every walk reporting
    /// `ExternallyStopped` (or `IterationLimit` if its budget ran out first).
    pub fn run_with_deadline(
        &self,
        master_seed: u64,
        deadline: Option<Instant>,
    ) -> MultiWalkResult {
        self.run_with_controls(master_seed, deadline, None)
    }

    /// The fully-controlled fan-out: an optional deadline *and* an optional
    /// [`CancelToken`], with per-walk panic isolation.
    ///
    /// * Every walk polls the shared first-solution flag, the deadline and the
    ///   cancel token at its stop-check interval; whichever fires first ends
    ///   the walk.
    /// * A panicking walk (a buggy or fault-injected model) is caught with
    ///   `catch_unwind` and costs only itself: its slot in `walk_results`
    ///   becomes a synthetic [`SolveResult::panicked`] placeholder and the
    ///   surviving walks' race is undisturbed.  The runner never aborts.
    pub fn run_with_controls(
        &self,
        master_seed: u64,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> MultiWalkResult {
        let start = Instant::now();
        let found = Arc::new(AtomicBool::new(false));
        let winner: WinnerCell = Arc::new(Mutex::new(None));

        let mut walk_results: Vec<Option<SolveResult>> = (0..self.workers).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|rank| {
                    let spec = self.spec.clone();
                    let found = found.clone();
                    let winner = winner.clone();
                    let cancel = cancel.cloned();
                    scope.spawn(move || {
                        let walk_start = Instant::now();
                        // The catch region covers engine construction and the
                        // whole solve; winner recording stays outside it so a
                        // poisoned winner mutex cannot be blamed on this walk.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut engine = spec.build_engine(master_seed, rank);
                            let mut conditions: Vec<Box<dyn StopCondition>> =
                                vec![Box::new(FlagStop::new(found.clone()))];
                            if let Some(at) = deadline {
                                conditions.push(Box::new(DeadlineStop::at(at)));
                            }
                            if let Some(token) = &cancel {
                                conditions.push(Box::new(token.stop_condition()));
                            }
                            engine.solve_until(&mut AnyStop::new(conditions))
                        }));
                        let result = match outcome {
                            Ok(result) => result,
                            Err(_) => SolveResult::panicked(walk_start.elapsed()),
                        };
                        if result.status == SolveStatus::Solved {
                            // First writer wins; later solvers keep their result but
                            // do not overwrite the winner record.
                            let mut guard =
                                winner.lock().unwrap_or_else(|poison| poison.into_inner());
                            if guard.is_none() {
                                *guard = Some((
                                    rank,
                                    result.solution.clone().expect("solved implies solution"),
                                ));
                            }
                            found.store(true, Ordering::Relaxed);
                        }
                        result
                    })
                })
                .collect();
            for (rank, handle) in handles.into_iter().enumerate() {
                // A join error is unreachable while catch_unwind covers the
                // walk body; treat it as one more dead walk, never an abort.
                walk_results[rank] = Some(
                    handle
                        .join()
                        .unwrap_or_else(|_| SolveResult::panicked(start.elapsed())),
                );
            }
        });

        let elapsed = start.elapsed();
        let winner_record = winner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone();
        MultiWalkResult {
            solution: winner_record.as_ref().map(|(_, sol)| sol.clone()),
            winner: winner_record.map(|(rank, _)| rank),
            elapsed,
            walks: self.workers,
            walk_results: walk_results
                .into_iter()
                .map(|r| r.expect("every walk reports"))
                .collect(),
        }
    }

    /// Run the job with **no early-termination flag**: every walk runs to its own
    /// completion (solution or iteration budget) and the winner is the solved walk
    /// with the fewest iterations (rank breaks ties).
    ///
    /// Unlike [`ThreadRunner::run`], whose winner record depends on which thread
    /// reaches the mutex first (OS scheduling), everything here except `elapsed`
    /// is a pure function of `(spec, master_seed, workers)`: the winning rank, the
    /// winning permutation and every per-walk statistic replay bit-for-bit.  Two
    /// users:
    ///
    /// * the strong-scaling harness (`bench::scaling`), whose throughput leg needs
    ///   every thread busy for the whole measurement window and whose results must
    ///   be reproducible across hosts up to wall-clock;
    /// * determinism regression tests, which pin `run` semantics being racy to
    ///   this method being the reproducible alternative.
    ///
    /// The iteration-count winner criterion is exactly the virtual cluster's
    /// machine-independent clock, so a deterministic thread job agrees with the
    /// simulator about *who* wins, while still exercising real OS threads.
    pub fn run_deterministic(&self, master_seed: u64) -> MultiWalkResult {
        let start = Instant::now();
        let mut walk_results: Vec<Option<SolveResult>> = (0..self.workers).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|rank| {
                    let spec = self.spec.clone();
                    scope.spawn(move || {
                        let walk_start = Instant::now();
                        // Panic isolation preserves determinism: a fault that
                        // is a function of (spec, master_seed, rank) kills the
                        // same walk in every replay, and the placeholder's
                        // u64::MAX costs keep it out of the winner fold.
                        catch_unwind(AssertUnwindSafe(|| {
                            let mut engine = spec.build_engine(master_seed, rank);
                            engine.solve()
                        }))
                        .unwrap_or_else(|_| SolveResult::panicked(walk_start.elapsed()))
                    })
                })
                .collect();
            for (rank, handle) in handles.into_iter().enumerate() {
                walk_results[rank] = Some(
                    handle
                        .join()
                        .unwrap_or_else(|_| SolveResult::panicked(start.elapsed())),
                );
            }
        });

        let elapsed = start.elapsed();
        let walk_results: Vec<SolveResult> = walk_results
            .into_iter()
            .map(|r| r.expect("every walk reports"))
            .collect();
        let winner = walk_results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.status == SolveStatus::Solved)
            .min_by_key(|(rank, r)| (r.stats.iterations, *rank))
            .map(|(rank, _)| rank);
        MultiWalkResult {
            solution: winner.and_then(|w| walk_results[w].solution.clone()),
            winner,
            elapsed,
            walks: self.workers,
            walk_results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_search::AsConfig;
    use costas::is_costas_permutation;

    #[test]
    fn single_walk_behaves_like_sequential_solve() {
        let runner = ThreadRunner::new(WalkSpec::costas(11), 1);
        let result = runner.run(5);
        assert!(result.solved());
        assert_eq!(result.winner, Some(0));
        assert_eq!(result.walks, 1);
        assert!(is_costas_permutation(result.solution.as_ref().unwrap()));
        assert_eq!(
            result.total_iterations(),
            result.walk_results[0].stats.iterations
        );
    }

    #[test]
    fn multiple_walks_terminate_after_first_success() {
        let runner = ThreadRunner::new(WalkSpec::costas(12), 4);
        let result = runner.run(99);
        assert!(result.solved());
        let winner = result.winner.unwrap();
        assert!(winner < 4);
        assert!(is_costas_permutation(result.solution.as_ref().unwrap()));
        // every non-winning walk either solved independently or was stopped/limited
        for (rank, r) in result.walk_results.iter().enumerate() {
            if rank != winner {
                assert!(
                    matches!(
                        r.status,
                        SolveStatus::ExternallyStopped
                            | SolveStatus::Solved
                            | SolveStatus::IterationLimit
                    ),
                    "rank {rank}: {:?}",
                    r.status
                );
            }
        }
        assert!(result.winner_iterations().is_some());
    }

    #[test]
    fn unsolvable_budget_reports_failure_for_all_walks() {
        // Give every walk a tiny iteration budget on a hard instance: nobody solves.
        let spec = WalkSpec::costas(18).with_config(AsConfig::builder().max_iterations(20).build());
        let runner = ThreadRunner::new(spec, 3);
        let result = runner.run(1);
        assert!(!result.solved());
        assert_eq!(result.winner, None);
        assert!(result
            .walk_results
            .iter()
            .all(|r| r.status == SolveStatus::IterationLimit));
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_workers_rejected() {
        let _ = ThreadRunner::new(WalkSpec::costas(5), 0);
    }

    #[test]
    fn winner_on_a_poll_boundary_reports_solved_not_stopped() {
        // Regression test for the termination race at a poll boundary: with
        // `stop_check_interval = 1` every iteration is a poll boundary, so the
        // winning walk necessarily finishes *exactly* on one while the shared flag
        // may already be raised by a concurrent solver.  The engine checks the step
        // outcome before polling, so a walk that solves on the boundary must report
        // `Solved` — never `ExternallyStopped` — and its solution must be recorded.
        let spec =
            WalkSpec::costas(10).with_config(AsConfig::builder().stop_check_interval(1).build());
        for master_seed in 0..8u64 {
            let runner = ThreadRunner::new(spec.clone(), 4);
            let result = runner.run(master_seed);
            assert!(result.solved(), "seed {master_seed}");
            let winner = result.winner.unwrap();
            assert_eq!(
                result.walk_results[winner].status,
                SolveStatus::Solved,
                "seed {master_seed}: a winner stopped at the poll boundary"
            );
            assert!(is_costas_permutation(result.solution.as_ref().unwrap()));
            // The recorded solution is the winner's, not a later solver's.
            assert_eq!(
                result.solution, result.walk_results[winner].solution,
                "seed {master_seed}"
            );
        }
    }

    #[test]
    fn deterministic_run_replays_bit_for_bit_across_repeats() {
        // The flag-free variant must be a pure function of (spec, seed, workers):
        // same winner rank, same winning permutation, same per-walk statistics.
        // A capped budget keeps non-solving walks bounded.
        let spec =
            WalkSpec::costas(12).with_config(AsConfig::builder().max_iterations(50_000).build());
        let runner = ThreadRunner::new(spec, 4);
        let a = runner.run_deterministic(2024);
        let b = runner.run_deterministic(2024);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.walk_results.len(), b.walk_results.len());
        for (rank, (ra, rb)) in a.walk_results.iter().zip(&b.walk_results).enumerate() {
            assert_eq!(ra.status, rb.status, "rank {rank}");
            assert_eq!(ra.solution, rb.solution, "rank {rank}");
            assert_eq!(ra.stats, rb.stats, "rank {rank}");
        }
        assert!(a.solved(), "order 12 solves within the budget");
        assert!(is_costas_permutation(a.solution.as_ref().unwrap()));
    }

    #[test]
    fn deterministic_winner_minimises_iterations_then_rank() {
        let runner = ThreadRunner::new(WalkSpec::costas(10), 4);
        let result = runner.run_deterministic(7);
        assert!(result.solved());
        let winner = result.winner.unwrap();
        let expected = result
            .walk_results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.status == SolveStatus::Solved)
            .min_by_key(|(rank, r)| (r.stats.iterations, *rank))
            .map(|(rank, _)| rank)
            .unwrap();
        assert_eq!(winner, expected);
        assert_eq!(result.solution, result.walk_results[winner].solution);
        // no early stop: every walk ran to its own conclusion
        assert!(result
            .walk_results
            .iter()
            .all(|r| r.status != SolveStatus::ExternallyStopped));
    }

    #[test]
    fn deadline_bounds_a_fanout_that_would_otherwise_run_long() {
        // Order-24 CAP with an unbounded budget would run for minutes; the
        // deadline must cut every walk off near the bound.
        let start = Instant::now();
        let runner = ThreadRunner::new(WalkSpec::costas(24), 2);
        let deadline = Instant::now() + Duration::from_millis(50);
        let result = runner.run_with_deadline(1, Some(deadline));
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline ignored"
        );
        assert!(!result.solved());
        assert!(result
            .walk_results
            .iter()
            .all(|r| r.status == SolveStatus::ExternallyStopped));
    }

    #[test]
    fn cancel_token_stops_a_fanout_mid_flight() {
        // Order-24 CAP with an unbounded budget only ends because the token is
        // raised from outside the runner — the service-side cancellation path.
        let start = Instant::now();
        let runner = ThreadRunner::new(WalkSpec::costas(24), 2);
        let token = CancelToken::new();
        let signal = token.clone();
        let signaller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            signal.cancel();
        });
        let result = runner.run_with_controls(1, None, Some(&token));
        signaller.join().unwrap();
        assert!(start.elapsed() < Duration::from_secs(30), "cancel ignored");
        assert!(!result.solved());
        assert!(result
            .walk_results
            .iter()
            .all(|r| r.status == SolveStatus::ExternallyStopped));
        assert!(token.is_cancelled());
    }

    #[test]
    fn no_deadline_matches_plain_run_semantics() {
        let spec = WalkSpec::costas(18).with_config(AsConfig::builder().max_iterations(20).build());
        let runner = ThreadRunner::new(spec, 2);
        let result = runner.run_with_deadline(1, None);
        assert!(!result.solved());
        assert!(result
            .walk_results
            .iter()
            .all(|r| r.status == SolveStatus::IterationLimit));
    }

    #[test]
    fn reproducible_given_same_master_seed_and_single_walk() {
        let runner = ThreadRunner::new(WalkSpec::costas(10), 1);
        let a = runner.run(33);
        let b = runner.run(33);
        assert_eq!(a.solution, b.solution);
        assert_eq!(
            a.walk_results[0].stats.iterations,
            b.walk_results[0].stats.iterations
        );
    }
}
