//! The virtual cluster: reproducing the paper's 32–8,192-core experiments on a small
//! host.
//!
//! Because the parallel scheme is *independent* multi-walk (no communication during
//! the search), the wall-clock time of a K-core job is, up to the termination-check
//! granularity `c` and a negligible notification delay, the **minimum over K
//! independently seeded sequential walks of their completion time**.  The virtual
//! cluster exploits this exact property — the same one the paper's own analysis
//! (§V-B, time-to-target plots and [Verhoeven & Aarts]) relies on:
//!
//! * [`VirtualCluster::run_exact`] actually runs K walks, interleaving them in blocks
//!   of `c` iterations on a round-robin schedule, and stops as soon as one solves.
//!   This is a faithful simulation (every walk executes the real engine on the real
//!   problem); only the notion of time changes: the virtual clock counts *iterations
//!   of the winning walk*, the machine-independent unit Table I also reports.
//! * [`VirtualCluster::run_sampled`] draws the K walks' completion iteration counts
//!   from an empirical distribution previously measured with real sequential runs,
//!   and takes the minimum.  This makes 8,192-core points affordable when running
//!   8,192 real walks would not be; it is statistically equivalent as long as the
//!   empirical sample is representative (EXPERIMENTS.md reports which mode produced
//!   which table).
//!
//! A [`PlatformProfile`] converts the virtual clock into seconds for the machine being
//! simulated, using an iteration rate calibrated on the local host.

use adaptive_search::{PermutationProblem, StepOutcome};
use xrand::{RandExt, SeedSequence};

use crate::platform::PlatformProfile;
use crate::walker::WalkSpec;

/// Result of one simulated parallel job.
#[derive(Debug, Clone)]
pub struct SimulatedRun {
    /// Number of simulated cores (walks).
    pub cores: usize,
    /// Rank of the winning walk, if any.
    pub winner_rank: Option<usize>,
    /// Iterations executed by the winning walk (the virtual critical path).
    pub winner_iterations: u64,
    /// Virtual wall-clock seconds on the simulated platform.
    pub virtual_seconds: f64,
    /// Total iterations executed across all walks (the work performed).
    pub total_iterations: u64,
    /// The solution found, when the run was executed exactly (sampled runs carry
    /// `None`).
    pub solution: Option<Vec<usize>>,
}

impl SimulatedRun {
    /// Did the job find a solution (always true for sampled runs, which model only
    /// successful completions)?
    pub fn solved(&self) -> bool {
        self.winner_rank.is_some()
    }
}

/// Simulator of a K-core independent multi-walk job.
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    platform: PlatformProfile,
    reference_iterations_per_second: f64,
}

impl VirtualCluster {
    /// Default reference iteration rate used when no calibration has been performed.
    /// The exact value only affects the absolute seconds printed next to the
    /// machine-independent iteration counts.
    pub const DEFAULT_REFERENCE_RATE: f64 = 1_000_000.0;

    /// Create a simulator for the given platform with the default reference rate.
    pub fn new(platform: PlatformProfile) -> Self {
        Self {
            platform,
            reference_iterations_per_second: Self::DEFAULT_REFERENCE_RATE,
        }
    }

    /// Override the reference iteration rate (iterations/second of one reference-
    /// platform core), e.g. with a value obtained from [`VirtualCluster::calibrate`].
    pub fn with_reference_rate(mut self, iterations_per_second: f64) -> Self {
        assert!(
            iterations_per_second > 0.0,
            "iteration rate must be positive"
        );
        self.reference_iterations_per_second = iterations_per_second;
        self
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformProfile {
        &self.platform
    }

    /// The reference iteration rate in use.
    pub fn reference_rate(&self) -> f64 {
        self.reference_iterations_per_second
    }

    /// Measure the local host's sequential iteration rate for `spec` by running a
    /// real engine for `budget_iterations` iterations.
    pub fn calibrate(spec: &WalkSpec, budget_iterations: u64, seed: u64) -> f64 {
        let mut engine = spec.build_engine(seed, 0);
        let start = std::time::Instant::now();
        let mut done = 0u64;
        while done < budget_iterations {
            if engine.step() == StepOutcome::Solved {
                // Solved before exhausting the budget: restart and keep measuring so
                // the rate covers a representative mix of search phases.
                engine.restart();
            }
            done += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            done as f64 / secs
        } else {
            Self::DEFAULT_REFERENCE_RATE
        }
    }

    fn seconds(&self, iterations: u64) -> f64 {
        self.platform
            .seconds_for(iterations, self.reference_iterations_per_second)
    }

    /// Exact simulation: run `cores` real walks, interleaved in blocks of the spec's
    /// termination-check interval `c`, stopping as soon as one walk solves.
    ///
    /// The returned `winner_iterations` is the iteration count of the winning walk at
    /// the moment it solved; `total_iterations` is the work executed by all walks up
    /// to the end of the block in which the winner finished (every other walk would
    /// notice the termination message at its next check, exactly as in the paper).
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    pub fn run_exact(&self, spec: &WalkSpec, cores: usize, master_seed: u64) -> SimulatedRun {
        assert!(cores > 0, "a job needs at least one core");
        let check = spec.check_interval().max(1);
        let mut engines: Vec<_> = (0..cores)
            .map(|rank| spec.build_engine(master_seed, rank))
            .collect();
        let budget = spec.config.max_iterations;

        let mut winner: Option<(usize, u64)> = None;
        let mut solution: Option<Vec<usize>> = None;
        let mut executed: u64 = 0;
        let mut block_start: u64 = 0;
        'outer: loop {
            // Every walk executes one block of `c` iterations (round-robin).
            for (rank, engine) in engines.iter_mut().enumerate() {
                for step_in_block in 0..check {
                    if engine.step() == StepOutcome::Solved {
                        let iters = block_start + step_in_block + 1;
                        executed += step_in_block + 1;
                        match winner {
                            Some((_, best)) if best <= iters => {}
                            _ => {
                                winner = Some((rank, iters));
                                solution = Some(engine.problem().configuration().to_vec());
                            }
                        }
                        // The rest of this walk's block is not executed: it has
                        // finished.  Other walks still complete the current block
                        // (they only poll at block boundaries).
                        break;
                    }
                    if step_in_block == check - 1 {
                        executed += check;
                    }
                }
                // A walk that exceeded its per-walk budget without solving just idles.
                if winner.is_none() && block_start + check >= budget && rank == cores - 1 {
                    break 'outer;
                }
            }
            if winner.is_some() {
                break;
            }
            block_start += check;
            if block_start >= budget {
                break;
            }
        }

        let (winner_rank, winner_iterations) = match winner {
            Some((rank, iters)) => (Some(rank), iters),
            None => (None, block_start.min(budget)),
        };
        SimulatedRun {
            cores,
            winner_rank,
            winner_iterations,
            virtual_seconds: self.seconds(winner_iterations),
            total_iterations: executed,
            solution,
        }
    }

    /// Run `runs` independent exact simulations (the protocol behind one table cell:
    /// the paper uses 50 runs per instance × core-count).
    pub fn run_exact_many(
        &self,
        spec: &WalkSpec,
        cores: usize,
        runs: usize,
        master_seed: u64,
    ) -> Vec<SimulatedRun> {
        let seeds = SeedSequence::new(master_seed);
        (0..runs)
            .map(|r| self.run_exact(spec, cores, seeds.child(r as u64).seed()))
            .collect()
    }

    /// Sampled simulation: model each walk's completion as an independent draw from
    /// `iteration_samples` (an empirical distribution of *sequential* completion
    /// iteration counts measured with the real engine), and the job's completion as
    /// the minimum over `cores` draws, rounded up to the termination-check interval.
    ///
    /// # Panics
    /// Panics if `iteration_samples` is empty or `cores == 0`.
    pub fn run_sampled(
        &self,
        iteration_samples: &[u64],
        check_interval: u64,
        cores: usize,
        master_seed: u64,
    ) -> SimulatedRun {
        assert!(
            !iteration_samples.is_empty(),
            "need at least one runtime sample"
        );
        assert!(cores > 0, "a job needs at least one core");
        let mut rng = xrand::default_rng(master_seed);
        let check = check_interval.max(1);
        let mut best = u64::MAX;
        let mut best_rank = 0usize;
        let mut total = 0u64;
        for rank in 0..cores {
            let draw = iteration_samples[rng.index(iteration_samples.len())];
            // every non-winning walk works until the winner's completion is noticed
            total = total.saturating_add(draw.min(best));
            if draw < best {
                best = draw;
                best_rank = rank;
            }
        }
        // Round the critical path up to the next termination check boundary.
        let winner_iterations = best.div_ceil(check) * check;
        SimulatedRun {
            cores,
            winner_rank: Some(best_rank),
            winner_iterations,
            virtual_seconds: self.seconds(winner_iterations),
            total_iterations: total,
            solution: None,
        }
    }

    /// Run `runs` sampled simulations.
    pub fn run_sampled_many(
        &self,
        iteration_samples: &[u64],
        check_interval: u64,
        cores: usize,
        runs: usize,
        master_seed: u64,
    ) -> Vec<SimulatedRun> {
        let seeds = SeedSequence::new(master_seed);
        (0..runs)
            .map(|r| {
                self.run_sampled(
                    iteration_samples,
                    check_interval,
                    cores,
                    seeds.child(r as u64).seed(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_search::AsConfig;
    use costas::is_costas_permutation;

    fn cluster() -> VirtualCluster {
        VirtualCluster::new(PlatformProfile::local()).with_reference_rate(1_000_000.0)
    }

    #[test]
    fn exact_run_finds_a_real_solution() {
        let spec = WalkSpec::costas(11);
        let run = cluster().run_exact(&spec, 4, 42);
        assert!(run.solved());
        assert!(is_costas_permutation(run.solution.as_ref().unwrap()));
        assert!(run.winner_iterations > 0);
        assert!(run.total_iterations >= run.winner_iterations);
        assert!(run.virtual_seconds > 0.0);
        assert_eq!(run.cores, 4);
    }

    #[test]
    fn more_cores_never_slow_down_the_virtual_clock_on_average() {
        // Statistical sanity check of the min-of-K law on a small instance: the mean
        // winner iteration count over several runs should not increase when going
        // from 1 to 8 cores.
        let spec = WalkSpec::costas(10);
        let c = cluster();
        let one: Vec<_> = c.run_exact_many(&spec, 1, 12, 7);
        let eight: Vec<_> = c.run_exact_many(&spec, 8, 12, 7);
        let avg = |runs: &[SimulatedRun]| {
            runs.iter().map(|r| r.winner_iterations as f64).sum::<f64>() / runs.len() as f64
        };
        assert!(
            avg(&eight) <= avg(&one),
            "8 cores should be at least as fast: {} vs {}",
            avg(&eight),
            avg(&one)
        );
    }

    #[test]
    fn exact_run_respects_iteration_budget() {
        let spec = WalkSpec::costas(18).with_config(
            AsConfig::builder()
                .max_iterations(64)
                .stop_check_interval(16)
                .build(),
        );
        let run = cluster().run_exact(&spec, 2, 3);
        assert!(!run.solved());
        assert!(run.winner_iterations <= 64);
        assert!(run.solution.is_none());
    }

    #[test]
    fn sampled_run_takes_the_minimum_draw() {
        let c = cluster();
        let samples = vec![1000u64, 2000, 4000, 8000];
        // With many cores the minimum sample is drawn almost surely.
        let run = c.run_sampled(&samples, 1, 256, 5);
        assert_eq!(run.winner_iterations, 1000);
        assert!(run.solved());
        assert!(run.total_iterations >= run.winner_iterations);
        // With a check interval of 300 the critical path rounds up to 1200.
        let run = c.run_sampled(&samples, 300, 256, 5);
        assert_eq!(run.winner_iterations, 1200);
    }

    #[test]
    fn sampled_runs_shrink_with_core_count() {
        let c = cluster();
        // a long-tailed sample set
        let samples: Vec<u64> = (1..=200).map(|i| i * i * 10).collect();
        let avg = |cores: usize| {
            let runs = c.run_sampled_many(&samples, 1, cores, 40, 11);
            runs.iter().map(|r| r.winner_iterations as f64).sum::<f64>() / runs.len() as f64
        };
        let a1 = avg(1);
        let a32 = avg(32);
        let a256 = avg(256);
        assert!(a32 < a1 / 4.0, "32 cores: {a32} vs 1 core: {a1}");
        assert!(a256 <= a32);
    }

    #[test]
    fn platform_factor_rescales_seconds_only() {
        let spec = WalkSpec::costas(9);
        let fast = VirtualCluster::new(PlatformProfile::ha8000()).with_reference_rate(1e6);
        let slow = VirtualCluster::new(PlatformProfile::jugene()).with_reference_rate(1e6);
        let rf = fast.run_exact(&spec, 2, 123);
        let rs = slow.run_exact(&spec, 2, 123);
        // identical seeds → identical virtual iterations, different seconds
        assert_eq!(rf.winner_iterations, rs.winner_iterations);
        assert!(rs.virtual_seconds > rf.virtual_seconds * 2.0);
    }

    #[test]
    fn calibration_returns_a_positive_rate() {
        let rate = VirtualCluster::calibrate(&WalkSpec::costas(12), 2_000, 1);
        assert!(rate > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        cluster().run_exact(&WalkSpec::costas(8), 0, 1);
    }

    #[test]
    #[should_panic(expected = "runtime sample")]
    fn empty_samples_rejected() {
        cluster().run_sampled(&[], 1, 4, 1);
    }
}
