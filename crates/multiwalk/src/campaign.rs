//! Campaign mode: long-running, resumable multi-walk search over one instance.
//!
//! The paper's headline results are multi-hour parallel hunts for hard Costas
//! instances; a run that dies at hour five must not restart from zero.  A
//! [`Campaign`] drives `walkers` independent Adaptive Search engines in rounds of
//! `checkpoint_interval` steps each and makes the whole hunt *fault-tolerant*:
//!
//! * **Checkpointing** — after each round the full campaign state (per-walker
//!   [`EngineSnapshot`]: RNG words, configurations, statistics, Tabu horizons,
//!   carried selection cache) is serialized with [`runtime_stats::json`] into a
//!   single hash-framed record and written atomically (temp file + rename, with the
//!   previous checkpoint rotated to a `.prev` file first).
//! * **Resume** — [`Campaign::open`] restores from the newest valid checkpoint and
//!   continues **bit-for-bit identically** to an uninterrupted same-seed run: same
//!   best configurations, same statistics, same result log bytes.  A torn
//!   checkpoint tail (the process died mid-write, or mid-rename) falls back to the
//!   previous checkpoint with a typed warning; semantic damage (flipped bytes,
//!   stale schema versions, unknown fields, spec mismatches) is a typed
//!   [`CampaignError`], never a panic and never silent acceptance.
//! * **Symmetry-deduped result log** — every solution found is canonicalized over
//!   the 8-element D₄ orbit ([`costas::canonical_form`]) and only *new* equivalence
//!   classes are appended to an append-only result log of hash-framed records.  On
//!   resume the log is truncated back to the byte offset recorded in the
//!   checkpoint, so records appended after the last checkpoint are rolled back and
//!   re-derived deterministically — a crash can never silently replay or duplicate
//!   a record.
//!
//! The record framing is shared by the checkpoint and the log: one record per
//! line, `<16-hex-digit FNV-1a-64 of the payload> <single-line JSON payload>\n`.
//! Payloads are rendered by [`Json::render`], which escapes control characters, so
//! a record never contains an interior newline — any truncation therefore leaves
//! an unterminated (and detectable) final fragment.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use adaptive_search::problems::DynProblem;
use adaptive_search::{Engine, EngineSnapshot, SearchStats, SnapshotError, StepOutcome};
use costas::canonical_form;
use runtime_stats::Json;

use crate::walker::WalkSpec;

/// Version tag of the checkpoint payload; bumped on any incompatible layout change.
pub const CHECKPOINT_SCHEMA: &str = "campaign_checkpoint/v1";
/// Version tag of the artifact section emitted by [`Campaign::artifact_section`].
pub const ARTIFACT_SCHEMA: &str = "campaign/v1";

const CHECKPOINT_FILE: &str = "checkpoint.ckpt";
const CHECKPOINT_PREV_FILE: &str = "checkpoint.prev.ckpt";
const CHECKPOINT_TMP_FILE: &str = "checkpoint.tmp";
const RESULT_LOG_FILE: &str = "results.log";

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash (stable across platforms and releases; the framing below
/// depends on these exact constants).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frame a single-line payload as a hash-prefixed record line.
///
/// # Panics
/// Panics if the payload contains a newline — framed payloads must be rendered
/// JSON, which escapes them.
pub fn frame_record(payload: &str) -> String {
    assert!(
        !payload.contains('\n'),
        "framed payloads must be single-line"
    );
    format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()))
}

/// A parsed record stream: the payloads of every intact record plus how many
/// bytes of the input they cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedLog {
    /// Payloads of the intact records, in file order.
    pub records: Vec<String>,
    /// Bytes of input covered by the intact records (a valid truncation point).
    pub valid_bytes: usize,
    /// The input ended in an unterminated fragment (a torn tail) that was not
    /// counted into `records` / `valid_bytes`.
    pub torn: bool,
}

/// A complete record failed its frame check — mid-file damage, not a torn tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordError {
    /// Zero-based index of the damaged record.
    pub index: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "record {}: {}", self.index, self.message)
    }
}

impl std::error::Error for RecordError {}

/// Parse a stream of framed records.
///
/// A trailing fragment without its final newline is a *torn tail* — reported via
/// [`ParsedLog::torn`] and excluded from the intact records, never an error (the
/// process died mid-append; recovery truncates it).  A **complete** line that
/// fails its frame or hash check is a [`RecordError`]: the file was damaged in
/// place, which recovery must surface, not repair silently.
pub fn parse_records(bytes: &[u8]) -> Result<ParsedLog, RecordError> {
    let mut records = Vec::new();
    let mut valid_bytes = 0usize;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            // Unterminated final fragment: torn tail.
            return Ok(ParsedLog {
                records,
                valid_bytes,
                torn: true,
            });
        };
        let line = &bytes[pos..pos + nl];
        let index = records.len();
        let check = |ok: bool, message: &str| -> Result<(), RecordError> {
            if ok {
                Ok(())
            } else {
                Err(RecordError {
                    index,
                    message: message.to_string(),
                })
            }
        };
        check(line.len() >= 18, "shorter than the 17-byte frame prefix")?;
        check(line[16] == b' ', "missing space after the hash prefix")?;
        let hex = std::str::from_utf8(&line[..16])
            .ok()
            .and_then(|s| u64::from_str_radix(s, 16).ok());
        let Some(expected) = hex else {
            return Err(RecordError {
                index,
                message: "hash prefix is not 16 hex digits".to_string(),
            });
        };
        let payload = &line[17..];
        check(
            fnv1a64(payload) == expected,
            "payload hash mismatch (damaged record)",
        )?;
        let payload = std::str::from_utf8(payload).map_err(|_| RecordError {
            index,
            message: "payload is not UTF-8".to_string(),
        })?;
        records.push(payload.to_string());
        pos += nl + 1;
        valid_bytes = pos;
    }
    Ok(ParsedLog {
        records,
        valid_bytes,
        torn: false,
    })
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a campaign could not be created, resumed, or stepped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// Filesystem failure.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Stringified OS error.
        message: String,
    },
    /// A complete checkpoint or log record was damaged in place (e.g. a flipped
    /// byte breaking its hash).
    Corrupt {
        /// File the damage was found in.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A record payload was not valid JSON or had the wrong shape.
    Parse {
        /// File the payload came from.
        path: PathBuf,
        /// Parser/shape diagnostic.
        message: String,
    },
    /// The checkpoint carries a schema version this build does not load.
    StaleSchema {
        /// Version found in the file.
        found: String,
        /// Version this build writes and loads.
        expected: &'static str,
    },
    /// The checkpoint contains a field this build does not know — written by a
    /// newer build, or damaged; either way resuming from it silently would be
    /// wrong.
    UnknownField {
        /// The offending key (dotted path).
        field: String,
    },
    /// A required checkpoint field is missing or has the wrong type.
    MissingField {
        /// The expected key (dotted path).
        field: String,
    },
    /// The checkpoint describes a different campaign than the spec being opened.
    SpecMismatch {
        /// Which identity field disagreed.
        field: &'static str,
        /// Human-readable found-vs-expected.
        message: String,
    },
    /// A per-walker engine snapshot did not fit the problem instance.
    BadSnapshot {
        /// Walker rank.
        rank: usize,
        /// The underlying snapshot error.
        error: SnapshotError,
    },
    /// The result log is shorter than the byte count the checkpoint recorded —
    /// the log was truncated *behind* the checkpoint, which cannot be recovered.
    LogBehindCheckpoint {
        /// Bytes the checkpoint expects the log to hold.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The spec names a problem the registry does not know.
    UnknownProblem {
        /// The unknown registry key.
        key: String,
    },
    /// The spec is internally invalid (zero walkers, zero interval, …).
    BadSpec {
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { path, message } => {
                write!(f, "I/O error on {}: {message}", path.display())
            }
            CampaignError::Corrupt { path, message } => {
                write!(f, "corrupt record in {}: {message}", path.display())
            }
            CampaignError::Parse { path, message } => {
                write!(f, "unparseable payload in {}: {message}", path.display())
            }
            CampaignError::StaleSchema { found, expected } => {
                write!(
                    f,
                    "checkpoint schema is {found:?}, this build loads {expected:?}"
                )
            }
            CampaignError::UnknownField { field } => {
                write!(f, "checkpoint contains unknown field `{field}`")
            }
            CampaignError::MissingField { field } => {
                write!(
                    f,
                    "checkpoint is missing field `{field}` (or it has the wrong type)"
                )
            }
            CampaignError::SpecMismatch { field, message } => {
                write!(
                    f,
                    "checkpoint is for a different campaign ({field}): {message}"
                )
            }
            CampaignError::BadSnapshot { rank, error } => {
                write!(
                    f,
                    "walker {rank} snapshot does not fit the instance: {error}"
                )
            }
            CampaignError::LogBehindCheckpoint { expected, found } => write!(
                f,
                "result log holds {found} bytes but the checkpoint recorded {expected}"
            ),
            CampaignError::UnknownProblem { key } => {
                write!(f, "unknown problem key {key:?}")
            }
            CampaignError::BadSpec { message } => write!(f, "invalid campaign spec: {message}"),
        }
    }
}

impl std::error::Error for CampaignError {}

fn io_err(path: &Path, e: std::io::Error) -> CampaignError {
    CampaignError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// What a campaign hunts and how it checkpoints.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Registry key of the problem (e.g. `"costas"`).
    pub problem: String,
    /// Instance parameter.
    pub n: usize,
    /// Number of independent walkers.
    pub walkers: usize,
    /// Master seed; per-walker seeds are derived through the chaotic seeder, so
    /// the whole campaign is a pure function of this spec.
    pub master_seed: u64,
    /// Total rounds the campaign runs.
    pub rounds: u64,
    /// Engine steps per walker per round (the checkpoint granularity).
    pub checkpoint_interval: u64,
    /// Rounds between checkpoints (1 = checkpoint every round).
    pub checkpoint_every: u64,
    /// Directory holding the checkpoint files and the result log.
    pub dir: PathBuf,
}

impl CampaignSpec {
    /// A Costas campaign with the paper's engine configuration.
    pub fn costas(n: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            problem: "costas".to_string(),
            n,
            walkers: 4,
            master_seed: 0,
            rounds: 8,
            checkpoint_interval: 10_000,
            checkpoint_every: 1,
            dir: dir.into(),
        }
    }

    fn validate(&self) -> Result<(), CampaignError> {
        let bad = |message: &str| {
            Err(CampaignError::BadSpec {
                message: message.to_string(),
            })
        };
        if self.walkers == 0 {
            return bad("walkers must be >= 1");
        }
        if self.checkpoint_interval == 0 {
            return bad("checkpoint_interval must be >= 1");
        }
        if self.checkpoint_every == 0 {
            return bad("checkpoint_every must be >= 1");
        }
        Ok(())
    }

    fn walk_spec(&self) -> Result<WalkSpec, CampaignError> {
        WalkSpec::for_problem(&self.problem, self.n).map_err(|_| CampaignError::UnknownProblem {
            key: self.problem.clone(),
        })
    }

    /// Path of the current checkpoint file.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Path of the previous (rotated) checkpoint file.
    pub fn checkpoint_prev_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_PREV_FILE)
    }

    /// Path of the append-only result log.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(RESULT_LOG_FILE)
    }
}

// ---------------------------------------------------------------------------
// Snapshot (de)serialization
// ---------------------------------------------------------------------------

const STATS_FIELDS: [&str; 15] = [
    "iterations",
    "local_minima",
    "improving_moves",
    "plateau_moves",
    "tabu_marks",
    "resets",
    "custom_resets",
    "custom_reset_escapes",
    "restarts",
    "coordinated_restarts",
    "injections_offered",
    "injections_adopted",
    "stop_checks",
    "culprit_scans",
    "culprit_fast_selects",
];

fn stats_to_json(s: &SearchStats) -> Json {
    Json::object(vec![
        ("iterations", s.iterations),
        ("local_minima", s.local_minima),
        ("improving_moves", s.improving_moves),
        ("plateau_moves", s.plateau_moves),
        ("tabu_marks", s.tabu_marks),
        ("resets", s.resets),
        ("custom_resets", s.custom_resets),
        ("custom_reset_escapes", s.custom_reset_escapes),
        ("restarts", s.restarts),
        ("coordinated_restarts", s.coordinated_restarts),
        ("injections_offered", s.injections_offered),
        ("injections_adopted", s.injections_adopted),
        ("stop_checks", s.stop_checks),
        ("culprit_scans", s.culprit_scans),
        ("culprit_fast_selects", s.culprit_fast_selects),
    ])
}

/// Reject object keys outside `known` — a checkpoint written by a newer build
/// (or damaged into extra fields) must not be half-loaded.
fn reject_unknown_fields(value: &Json, known: &[&str], context: &str) -> Result<(), CampaignError> {
    let Json::Object(map) = value else {
        return Err(CampaignError::MissingField {
            field: context.to_string(),
        });
    };
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(CampaignError::UnknownField {
                field: format!("{context}.{key}"),
            });
        }
    }
    Ok(())
}

fn get_u64(value: &Json, field: &str, context: &str) -> Result<u64, CampaignError> {
    value
        .get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| CampaignError::MissingField {
            field: format!("{context}.{field}"),
        })
}

fn get_bool(value: &Json, field: &str, context: &str) -> Result<bool, CampaignError> {
    value
        .get(field)
        .and_then(Json::as_bool)
        .ok_or_else(|| CampaignError::MissingField {
            field: format!("{context}.{field}"),
        })
}

fn get_u64_array(value: &Json, field: &str, context: &str) -> Result<Vec<u64>, CampaignError> {
    let missing = || CampaignError::MissingField {
        field: format!("{context}.{field}"),
    };
    let arr = value
        .get(field)
        .and_then(Json::as_array)
        .ok_or_else(missing)?;
    arr.iter().map(|v| v.as_u64().ok_or_else(missing)).collect()
}

fn get_usize_array(value: &Json, field: &str, context: &str) -> Result<Vec<usize>, CampaignError> {
    Ok(get_u64_array(value, field, context)?
        .into_iter()
        .map(|v| v as usize)
        .collect())
}

fn stats_from_json(value: &Json, context: &str) -> Result<SearchStats, CampaignError> {
    reject_unknown_fields(value, &STATS_FIELDS, context)?;
    Ok(SearchStats {
        iterations: get_u64(value, "iterations", context)?,
        local_minima: get_u64(value, "local_minima", context)?,
        improving_moves: get_u64(value, "improving_moves", context)?,
        plateau_moves: get_u64(value, "plateau_moves", context)?,
        tabu_marks: get_u64(value, "tabu_marks", context)?,
        resets: get_u64(value, "resets", context)?,
        custom_resets: get_u64(value, "custom_resets", context)?,
        custom_reset_escapes: get_u64(value, "custom_reset_escapes", context)?,
        restarts: get_u64(value, "restarts", context)?,
        coordinated_restarts: get_u64(value, "coordinated_restarts", context)?,
        injections_offered: get_u64(value, "injections_offered", context)?,
        injections_adopted: get_u64(value, "injections_adopted", context)?,
        stop_checks: get_u64(value, "stop_checks", context)?,
        culprit_scans: get_u64(value, "culprit_scans", context)?,
        culprit_fast_selects: get_u64(value, "culprit_fast_selects", context)?,
    })
}

const SNAPSHOT_FIELDS: [&str; 15] = [
    "rng",
    "configuration",
    "stats",
    "best_cost",
    "best_config",
    "iterations_since_restart",
    "marked_since_reset",
    "restart_pending",
    "tabu_horizons",
    "freeze_log",
    "select_cache_valid",
    "select_cache_now",
    "culprit_best_err",
    "culprit_ties",
    "errors",
];

fn snapshot_to_json(s: &EngineSnapshot) -> Json {
    Json::Object(
        [
            ("rng".to_string(), Json::from(s.rng_state.to_vec())),
            (
                "configuration".to_string(),
                Json::from(s.configuration.clone()),
            ),
            ("stats".to_string(), stats_to_json(&s.stats)),
            ("best_cost".to_string(), Json::UInt(s.best_cost)),
            ("best_config".to_string(), Json::from(s.best_config.clone())),
            (
                "iterations_since_restart".to_string(),
                Json::UInt(s.iterations_since_restart),
            ),
            (
                "marked_since_reset".to_string(),
                Json::from(s.marked_since_reset),
            ),
            ("restart_pending".to_string(), Json::Bool(s.restart_pending)),
            (
                "tabu_horizons".to_string(),
                Json::from(s.tabu_horizons.clone()),
            ),
            (
                "freeze_log".to_string(),
                Json::Array(
                    s.freeze_log
                        .iter()
                        .map(|&(var, until)| Json::Array(vec![Json::from(var), Json::UInt(until)]))
                        .collect(),
                ),
            ),
            (
                "select_cache_valid".to_string(),
                Json::Bool(s.select_cache_valid),
            ),
            (
                "select_cache_now".to_string(),
                Json::UInt(s.select_cache_now),
            ),
            (
                "culprit_best_err".to_string(),
                Json::UInt(s.culprit_best_err),
            ),
            (
                "culprit_ties".to_string(),
                Json::from(s.culprit_ties.clone()),
            ),
            ("errors".to_string(), Json::from(s.errors.clone())),
        ]
        .into_iter()
        .collect(),
    )
}

fn snapshot_from_json(value: &Json, context: &str) -> Result<EngineSnapshot, CampaignError> {
    reject_unknown_fields(value, &SNAPSHOT_FIELDS, context)?;
    let rng_words = get_u64_array(value, "rng", context)?;
    let rng_state: [u64; 4] = rng_words
        .try_into()
        .map_err(|_| CampaignError::MissingField {
            field: format!("{context}.rng (must hold exactly 4 words)"),
        })?;
    let stats = stats_from_json(
        value
            .get("stats")
            .ok_or_else(|| CampaignError::MissingField {
                field: format!("{context}.stats"),
            })?,
        &format!("{context}.stats"),
    )?;
    let freeze_log = value
        .get("freeze_log")
        .and_then(Json::as_array)
        .ok_or_else(|| CampaignError::MissingField {
            field: format!("{context}.freeze_log"),
        })?
        .iter()
        .map(|entry| {
            let pair = entry.as_array().filter(|a| a.len() == 2)?;
            Some((pair[0].as_u64()? as usize, pair[1].as_u64()?))
        })
        .collect::<Option<Vec<(usize, u64)>>>()
        .ok_or_else(|| CampaignError::MissingField {
            field: format!("{context}.freeze_log (entries must be [var, until] pairs)"),
        })?;
    Ok(EngineSnapshot {
        rng_state,
        configuration: get_usize_array(value, "configuration", context)?,
        stats,
        best_cost: get_u64(value, "best_cost", context)?,
        best_config: get_usize_array(value, "best_config", context)?,
        iterations_since_restart: get_u64(value, "iterations_since_restart", context)?,
        marked_since_reset: get_u64(value, "marked_since_reset", context)? as usize,
        restart_pending: get_bool(value, "restart_pending", context)?,
        tabu_horizons: get_u64_array(value, "tabu_horizons", context)?,
        freeze_log,
        select_cache_valid: get_bool(value, "select_cache_valid", context)?,
        select_cache_now: get_u64(value, "select_cache_now", context)?,
        culprit_best_err: get_u64(value, "culprit_best_err", context)?,
        culprit_ties: get_usize_array(value, "culprit_ties", context)?,
        errors: get_u64_array(value, "errors", context)?,
    })
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// A resumable multi-walk search campaign (see the module docs).
pub struct Campaign {
    spec: CampaignSpec,
    engines: Vec<Engine<DynProblem>>,
    rounds_done: u64,
    solutions_found: u64,
    checkpoints_written: u64,
    resumes: u64,
    classes: BTreeSet<Vec<usize>>,
    log_bytes: u64,
    log_records: u64,
    warnings: Vec<String>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("spec", &self.spec)
            .field("rounds_done", &self.rounds_done)
            .field("solutions_found", &self.solutions_found)
            .field("distinct_classes", &self.classes.len())
            .field("checkpoints_written", &self.checkpoints_written)
            .field("resumes", &self.resumes)
            .finish_non_exhaustive()
    }
}

const CHECKPOINT_FIELDS: [&str; 13] = [
    "schema",
    "problem",
    "n",
    "walkers",
    "master_seed",
    "checkpoint_interval",
    "checkpoint_every",
    "rounds_done",
    "solutions_found",
    "checkpoints_written",
    "resumes",
    "log_bytes",
    "log_records",
    // "walkers_state" is validated separately so the error message can say which
    // rank failed — it is appended to this list at the check site.
];

impl Campaign {
    /// Open a campaign in `spec.dir`: resume from the newest valid checkpoint when
    /// one exists, start fresh otherwise.  Returns the campaign and whether it
    /// resumed.
    pub fn open(spec: CampaignSpec) -> Result<(Campaign, bool), CampaignError> {
        spec.validate()?;
        let walk = spec.walk_spec()?;
        fs::create_dir_all(&spec.dir).map_err(|e| io_err(&spec.dir, e))?;
        let current = spec.checkpoint_path();
        let prev = spec.checkpoint_prev_path();
        if current.exists() || prev.exists() {
            Self::resume(spec, walk)
        } else {
            let mut campaign = Self::fresh(spec, walk);
            // A result log without any checkpoint is a leftover from a dead
            // campaign that never reached its first checkpoint: rounds before the
            // first checkpoint are re-run from scratch, so the log restarts too.
            let log = campaign.spec.log_path();
            if log.exists() {
                fs::remove_file(&log).map_err(|e| io_err(&log, e))?;
                campaign
                    .warnings
                    .push("discarded a result log with no checkpoint".to_string());
            }
            Ok((campaign, false))
        }
    }

    fn fresh(spec: CampaignSpec, walk: WalkSpec) -> Campaign {
        let engines = (0..spec.walkers)
            .map(|rank| walk.build_engine(spec.master_seed, rank))
            .collect();
        Campaign {
            spec,
            engines,
            rounds_done: 0,
            solutions_found: 0,
            checkpoints_written: 0,
            resumes: 0,
            classes: BTreeSet::new(),
            log_bytes: 0,
            log_records: 0,
            warnings: Vec::new(),
        }
    }

    /// Load one checkpoint file into its payload object (framing + JSON only; no
    /// semantic validation).  A torn tail — unterminated record, zero records —
    /// is reported as `Ok(None)` so the caller can fall back; everything else is
    /// a hard error.
    fn load_checkpoint_payload(path: &Path) -> Result<Option<Json>, CampaignError> {
        let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
        let parsed = parse_records(&bytes).map_err(|e| CampaignError::Corrupt {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        if parsed.torn || parsed.records.is_empty() {
            return Ok(None);
        }
        if parsed.records.len() != 1 {
            return Err(CampaignError::Corrupt {
                path: path.to_path_buf(),
                message: format!(
                    "checkpoint must hold exactly one record, found {}",
                    parsed.records.len()
                ),
            });
        }
        let payload = Json::parse(&parsed.records[0]).map_err(|e| CampaignError::Parse {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Ok(Some(payload))
    }

    fn resume(spec: CampaignSpec, walk: WalkSpec) -> Result<(Campaign, bool), CampaignError> {
        let current = spec.checkpoint_path();
        let prev = spec.checkpoint_prev_path();
        let mut warnings = Vec::new();
        // Newest-first: a torn (or absent) current checkpoint falls back to the
        // rotated previous one with a warning; anything else is a typed error.
        let payload = match if current.exists() {
            Self::load_checkpoint_payload(&current)?
        } else {
            warnings.push(format!(
                "checkpoint {} missing, trying the previous checkpoint",
                current.display()
            ));
            None
        } {
            Some(payload) => payload,
            None => {
                if current.exists() {
                    warnings.push(format!(
                        "checkpoint {} has a torn tail, recovering from the previous checkpoint",
                        current.display()
                    ));
                }
                match Self::load_checkpoint_payload(&prev)? {
                    Some(payload) => payload,
                    None => {
                        return Err(CampaignError::Corrupt {
                            path: prev,
                            message: "previous checkpoint is torn or empty too".to_string(),
                        })
                    }
                }
            }
        };
        let mut campaign = Self::restore_from_payload(spec, walk, &payload)?;
        campaign.warnings.append(&mut warnings);
        campaign.resumes += 1;
        Ok((campaign, true))
    }

    fn restore_from_payload(
        spec: CampaignSpec,
        walk: WalkSpec,
        payload: &Json,
    ) -> Result<Campaign, CampaignError> {
        let ctx = "checkpoint";
        // Schema first: a stale version must say so, not "unknown field".
        let found_schema = payload
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| CampaignError::MissingField {
                field: format!("{ctx}.schema"),
            })?;
        if found_schema != CHECKPOINT_SCHEMA {
            return Err(CampaignError::StaleSchema {
                found: found_schema.to_string(),
                expected: CHECKPOINT_SCHEMA,
            });
        }
        let mut known: Vec<&str> = CHECKPOINT_FIELDS.to_vec();
        known.push("walkers_state");
        reject_unknown_fields(payload, &known, ctx)?;
        // Identity: the checkpoint must describe the campaign being opened.
        let found_problem = payload
            .get("problem")
            .and_then(Json::as_str)
            .ok_or_else(|| CampaignError::MissingField {
                field: format!("{ctx}.problem"),
            })?;
        let mismatch = |field: &'static str,
                        found: &dyn std::fmt::Display,
                        expected: &dyn std::fmt::Display| {
            Err(CampaignError::SpecMismatch {
                field,
                message: format!("checkpoint has {found}, spec has {expected}"),
            })
        };
        if found_problem != spec.problem {
            return mismatch("problem", &found_problem, &spec.problem);
        }
        for (field, found, expected) in [
            ("n", get_u64(payload, "n", ctx)?, spec.n as u64),
            (
                "walkers",
                get_u64(payload, "walkers", ctx)?,
                spec.walkers as u64,
            ),
            (
                "master_seed",
                get_u64(payload, "master_seed", ctx)?,
                spec.master_seed,
            ),
            (
                "checkpoint_interval",
                get_u64(payload, "checkpoint_interval", ctx)?,
                spec.checkpoint_interval,
            ),
            (
                "checkpoint_every",
                get_u64(payload, "checkpoint_every", ctx)?,
                spec.checkpoint_every,
            ),
        ] {
            if found != expected {
                return mismatch(
                    match field {
                        "n" => "n",
                        "walkers" => "walkers",
                        "master_seed" => "master_seed",
                        "checkpoint_interval" => "checkpoint_interval",
                        _ => "checkpoint_every",
                    },
                    &found,
                    &expected,
                );
            }
        }
        let snapshots = payload
            .get("walkers_state")
            .and_then(Json::as_array)
            .ok_or_else(|| CampaignError::MissingField {
                field: format!("{ctx}.walkers_state"),
            })?;
        if snapshots.len() != spec.walkers {
            return mismatch("walkers_state", &snapshots.len(), &spec.walkers);
        }
        let mut engines = Vec::with_capacity(spec.walkers);
        for (rank, snap_json) in snapshots.iter().enumerate() {
            let snap = snapshot_from_json(snap_json, &format!("{ctx}.walkers_state[{rank}]"))?;
            let engine = Engine::from_snapshot(walk.build_problem(), walk.config.clone(), &snap)
                .map_err(|error| CampaignError::BadSnapshot { rank, error })?;
            engines.push(engine);
        }
        let mut campaign = Campaign {
            rounds_done: get_u64(payload, "rounds_done", ctx)?,
            solutions_found: get_u64(payload, "solutions_found", ctx)?,
            checkpoints_written: get_u64(payload, "checkpoints_written", ctx)?,
            resumes: get_u64(payload, "resumes", ctx)?,
            log_bytes: get_u64(payload, "log_bytes", ctx)?,
            log_records: get_u64(payload, "log_records", ctx)?,
            classes: BTreeSet::new(),
            warnings: Vec::new(),
            engines,
            spec,
        };
        campaign.reload_result_log()?;
        Ok(campaign)
    }

    /// Roll the result log back to the prefix the checkpoint recorded and rebuild
    /// the dedup set from it.  Records appended after the checkpoint (including a
    /// torn tail from a mid-append crash) are truncated — they will be re-found
    /// deterministically when their round re-runs.
    fn reload_result_log(&mut self) -> Result<(), CampaignError> {
        let path = self.spec.log_path();
        let bytes = if path.exists() {
            fs::read(&path).map_err(|e| io_err(&path, e))?
        } else {
            Vec::new()
        };
        let expected = self.log_bytes;
        if (bytes.len() as u64) < expected {
            return Err(CampaignError::LogBehindCheckpoint {
                expected,
                found: bytes.len() as u64,
            });
        }
        if bytes.len() as u64 > expected {
            self.warnings.push(format!(
                "truncating {} result-log bytes written after the checkpoint \
                 (they will be re-derived)",
                bytes.len() as u64 - expected
            ));
        }
        let prefix = &bytes[..expected as usize];
        let parsed = parse_records(prefix).map_err(|e| CampaignError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        if parsed.torn || parsed.valid_bytes as u64 != expected {
            return Err(CampaignError::Corrupt {
                path,
                message: "checkpointed log prefix does not end on a record boundary".to_string(),
            });
        }
        if parsed.records.len() as u64 != self.log_records {
            return Err(CampaignError::Corrupt {
                path,
                message: format!(
                    "checkpointed log prefix holds {} records, checkpoint recorded {}",
                    parsed.records.len(),
                    self.log_records
                ),
            });
        }
        self.classes.clear();
        for (index, payload) in parsed.records.iter().enumerate() {
            let value = Json::parse(payload).map_err(|e| CampaignError::Parse {
                path: path.clone(),
                message: format!("record {index}: {e}"),
            })?;
            let canonical = get_usize_array(&value, "canonical", &format!("log[{index}]"))?;
            self.classes.insert(canonical);
        }
        // Physically truncate so append continues from the checkpointed offset.
        if bytes.len() as u64 > expected {
            let file = fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.set_len(expected).map_err(|e| io_err(&path, e))?;
        }
        Ok(())
    }

    /// The symmetry-canonical representative used for dedup: the D₄ canonical form
    /// for Costas, the identity for other registry problems (whose symmetry groups
    /// are not modelled here).
    fn canonicalize(&self, solution: &[usize]) -> Vec<usize> {
        if self.spec.problem == "costas" {
            canonical_form(solution)
        } else {
            solution.to_vec()
        }
    }

    /// Run one round: every walker executes `checkpoint_interval` engine steps (in
    /// parallel — walkers are independent, so OS-thread parallelism preserves
    /// determinism), solutions are harvested in rank order, new equivalence
    /// classes are appended to the result log, and a checkpoint is written at
    /// `checkpoint_every` boundaries.
    pub fn run_round(&mut self) -> Result<(), CampaignError> {
        self.run_round_inner(true)
    }

    /// Deterministic fault-injection hook: run a full round — log append included —
    /// but *crash before the checkpoint* (skip it), simulating a process killed
    /// between the log write and the checkpoint rename.  A subsequent resume
    /// rolls the log back to the previous checkpoint and re-derives the round.
    pub fn run_round_crash_before_checkpoint(&mut self) -> Result<(), CampaignError> {
        self.run_round_inner(false)
    }

    fn run_round_inner(&mut self, with_checkpoint: bool) -> Result<(), CampaignError> {
        let interval = self.spec.checkpoint_interval;
        let harvests: Vec<Vec<Vec<usize>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter_mut()
                .map(|engine| {
                    scope.spawn(move || {
                        let mut found = Vec::new();
                        for _ in 0..interval {
                            if engine.step() == StepOutcome::Solved {
                                found.push(engine.problem().configuration().to_vec());
                                engine.restart();
                            }
                        }
                        found
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("walker threads do not panic"))
                .collect()
        });
        let mut appended = String::new();
        let mut appended_records = 0u64;
        for (rank, solutions) in harvests.into_iter().enumerate() {
            for solution in solutions {
                self.solutions_found += 1;
                let canonical = self.canonicalize(&solution);
                if self.classes.insert(canonical.clone()) {
                    let record = Json::Object(
                        [
                            ("canonical".to_string(), Json::from(canonical)),
                            ("rank".to_string(), Json::from(rank)),
                            ("round".to_string(), Json::UInt(self.rounds_done)),
                            ("solution".to_string(), Json::from(solution.clone())),
                        ]
                        .into_iter()
                        .collect(),
                    );
                    appended.push_str(&frame_record(&record.render()));
                    appended_records += 1;
                }
            }
        }
        if !appended.is_empty() {
            let path = self.spec.log_path();
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.write_all(appended.as_bytes())
                .map_err(|e| io_err(&path, e))?;
            file.sync_all().map_err(|e| io_err(&path, e))?;
            self.log_bytes += appended.len() as u64;
            self.log_records += appended_records;
        }
        self.rounds_done += 1;
        if with_checkpoint && self.rounds_done.is_multiple_of(self.spec.checkpoint_every) {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Run rounds until the spec's budget is reached, then persist a final
    /// checkpoint if the last round did not land on a `checkpoint_every` boundary.
    pub fn run_to_completion(&mut self) -> Result<(), CampaignError> {
        while self.rounds_done < self.spec.rounds {
            self.run_round()?;
        }
        if !self.rounds_done.is_multiple_of(self.spec.checkpoint_every) {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    fn checkpoint_payload(&self) -> Json {
        Json::Object(
            [
                ("schema".to_string(), Json::from(CHECKPOINT_SCHEMA)),
                ("problem".to_string(), Json::from(self.spec.problem.clone())),
                ("n".to_string(), Json::from(self.spec.n)),
                ("walkers".to_string(), Json::from(self.spec.walkers)),
                ("master_seed".to_string(), Json::UInt(self.spec.master_seed)),
                (
                    "checkpoint_interval".to_string(),
                    Json::UInt(self.spec.checkpoint_interval),
                ),
                (
                    "checkpoint_every".to_string(),
                    Json::UInt(self.spec.checkpoint_every),
                ),
                ("rounds_done".to_string(), Json::UInt(self.rounds_done)),
                (
                    "solutions_found".to_string(),
                    Json::UInt(self.solutions_found),
                ),
                (
                    "checkpoints_written".to_string(),
                    Json::UInt(self.checkpoints_written),
                ),
                ("resumes".to_string(), Json::UInt(self.resumes)),
                ("log_bytes".to_string(), Json::UInt(self.log_bytes)),
                ("log_records".to_string(), Json::UInt(self.log_records)),
                (
                    "walkers_state".to_string(),
                    Json::Array(
                        self.engines
                            .iter()
                            .map(|e| snapshot_to_json(&e.snapshot()))
                            .collect(),
                    ),
                ),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// Write a checkpoint atomically: render → temp file (synced) → rotate the
    /// current checkpoint to `.prev` → rename the temp file into place.  A crash
    /// at any point leaves either the old checkpoint, the old checkpoint plus a
    /// stray temp file, or the new checkpoint — never a half-written current file
    /// (and a torn temp/current still falls back to `.prev` on resume).
    pub fn write_checkpoint(&mut self) -> Result<(), CampaignError> {
        self.checkpoints_written += 1;
        let record = frame_record(&self.checkpoint_payload().render());
        let tmp = self.spec.dir.join(CHECKPOINT_TMP_FILE);
        let current = self.spec.checkpoint_path();
        let prev = self.spec.checkpoint_prev_path();
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(record.as_bytes())
                .map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        if current.exists() {
            fs::rename(&current, &prev).map_err(|e| io_err(&prev, e))?;
        }
        fs::rename(&tmp, &current).map_err(|e| io_err(&current, e))?;
        Ok(())
    }

    /// The machine-readable `campaign/v1` artifact section.  Every value is an
    /// integer derived from the deterministic search, so the section is itself
    /// deterministic for a given spec (modulo `resumes_survived`, which counts the
    /// crashes this particular execution lived through).
    pub fn artifact_section(&self) -> Json {
        let total_steps: u64 = self.engines.iter().map(|e| e.stats().iterations).sum();
        let best_cost = self
            .engines
            .iter()
            .map(|e| e.best_cost())
            .min()
            .expect("walkers >= 1");
        Json::Object(
            [
                ("schema".to_string(), Json::from(ARTIFACT_SCHEMA)),
                ("problem".to_string(), Json::from(self.spec.problem.clone())),
                ("n".to_string(), Json::from(self.spec.n)),
                ("walkers".to_string(), Json::from(self.spec.walkers)),
                ("master_seed".to_string(), Json::UInt(self.spec.master_seed)),
                ("rounds".to_string(), Json::UInt(self.rounds_done)),
                (
                    "checkpoint_interval".to_string(),
                    Json::UInt(self.spec.checkpoint_interval),
                ),
                ("total_steps".to_string(), Json::UInt(total_steps)),
                (
                    "solutions_found".to_string(),
                    Json::UInt(self.solutions_found),
                ),
                (
                    "distinct_classes".to_string(),
                    Json::from(self.classes.len()),
                ),
                ("log_records".to_string(), Json::UInt(self.log_records)),
                (
                    "checkpoints_written".to_string(),
                    Json::UInt(self.checkpoints_written),
                ),
                ("resumes_survived".to_string(), Json::UInt(self.resumes)),
                ("best_cost".to_string(), Json::UInt(best_cost)),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done
    }

    /// Total solutions harvested (duplicates under symmetry included).
    pub fn solutions_found(&self) -> u64 {
        self.solutions_found
    }

    /// Distinct solution classes up to D₄ symmetry, in canonical order.
    pub fn classes(&self) -> &BTreeSet<Vec<usize>> {
        &self.classes
    }

    /// Checkpoints written by this campaign lineage.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Resumes this campaign lineage has survived.
    pub fn resumes_survived(&self) -> u64 {
        self.resumes
    }

    /// Best cost over all walkers.
    pub fn best_cost(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.best_cost())
            .min()
            .expect("walkers >= 1")
    }

    /// Per-walker statistics, in rank order.
    pub fn walker_stats(&self) -> Vec<&SearchStats> {
        self.engines.iter().map(|e| e.stats()).collect()
    }

    /// Per-walker engine snapshots, in rank order — the campaign's complete search
    /// state, used by the bit-identity tests.
    pub fn walker_snapshots(&self) -> Vec<EngineSnapshot> {
        self.engines.iter().map(|e| e.snapshot()).collect()
    }

    /// Warnings accumulated while opening/recovering (torn tails, discarded
    /// post-checkpoint log records, …).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The spec this campaign runs.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_hash_is_the_published_reference() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frame_and_parse_round_trip() {
        let a = frame_record(r#"{"x":1}"#);
        let b = frame_record(r#"{"y":[2,3]}"#);
        let bytes = format!("{a}{b}");
        let parsed = parse_records(bytes.as_bytes()).expect("intact records");
        assert_eq!(parsed.records, vec![r#"{"x":1}"#, r#"{"y":[2,3]}"#]);
        assert_eq!(parsed.valid_bytes, bytes.len());
        assert!(!parsed.torn);
    }

    #[test]
    fn truncation_at_every_byte_is_torn_never_an_error() {
        let a = frame_record(r#"{"x":1}"#);
        let b = frame_record(r#"{"y":2}"#);
        let bytes = format!("{a}{b}");
        for cut in 0..bytes.len() {
            let parsed = parse_records(&bytes.as_bytes()[..cut]).expect("truncation is torn");
            if cut <= a.len() {
                assert!(parsed.records.len() <= 1);
            }
            // the intact prefix is always a record boundary
            assert!(parsed.valid_bytes == 0 || parsed.valid_bytes == a.len());
            assert_eq!(parsed.torn, cut != 0 && cut != a.len(), "cut {cut}");
        }
    }

    #[test]
    fn flipped_byte_in_a_complete_record_is_a_typed_error() {
        let framed = frame_record(r#"{"x":1}"#);
        let mut bytes = framed.into_bytes();
        let flip_at = bytes.len() - 3; // inside the payload
        bytes[flip_at] ^= 0x20;
        let err = parse_records(&bytes).expect_err("hash must catch the flip");
        assert_eq!(err.index, 0);
        assert!(err.message.contains("hash mismatch"), "{err}");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let spec = WalkSpec::costas(9);
        let mut engine = spec.build_engine(11, 0);
        for _ in 0..200 {
            if engine.step() == StepOutcome::Solved {
                engine.restart();
            }
        }
        let snap = engine.snapshot();
        let json = snapshot_to_json(&snap);
        // through the renderer and parser, like a real checkpoint
        let reparsed = Json::parse(&json.render()).expect("valid JSON");
        let restored = snapshot_from_json(&reparsed, "t").expect("well-formed snapshot");
        assert_eq!(restored, snap);
    }

    #[test]
    fn snapshot_json_rejects_unknown_fields() {
        let spec = WalkSpec::costas(6);
        let engine = spec.build_engine(3, 0);
        let json = snapshot_to_json(&engine.snapshot());
        let Json::Object(mut map) = json else {
            unreachable!()
        };
        map.insert("novel_field".to_string(), Json::UInt(1));
        let err = snapshot_from_json(&Json::Object(map), "t").expect_err("unknown field");
        assert_eq!(
            err,
            CampaignError::UnknownField {
                field: "t.novel_field".to_string()
            }
        );
    }
}
