//! Message-passing multi-walk: the paper's OpenMPI driver structure, written against
//! the `mpi-sim` substrate.
//!
//! Every rank runs a sequential Adaptive Search engine.  Every `c` iterations (the
//! engine's `stop_check_interval`) the rank performs a non-blocking probe; when a
//! "winner" announcement has arrived it stops.  The first rank to solve announces its
//! solution to every other rank.  No other communication takes place — the search
//! walks are fully independent, which is what makes the scheme "pleasantly parallel"
//! (paper §I, §V-A).

use std::time::Instant;

use adaptive_search::termination::{FnStop, StopReason};
use adaptive_search::{SolveResult, SolveStatus};
use mpi_sim::collectives::FirstResponder;
use mpi_sim::run_world_with_threads;

use crate::thread_runner::MultiWalkResult;
use crate::walker::WalkSpec;

/// Payload of the winner announcement: the winning rank's solution.
type WinnerPayload = Vec<usize>;

/// Per-rank record returned by each rank's closure.
#[derive(Debug, Clone)]
struct RankReport {
    result: SolveResult,
    announced: bool,
}

/// Runs independent walks as ranks of an `mpi-sim` world.
#[derive(Debug, Clone)]
pub struct MpiRunner {
    spec: WalkSpec,
    ranks: usize,
    max_threads: usize,
}

impl MpiRunner {
    /// Create a runner with one rank per walk, using at most as many OS threads as
    /// ranks.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(spec: WalkSpec, ranks: usize) -> Self {
        assert!(ranks > 0, "at least one rank is required");
        Self {
            spec,
            ranks,
            max_threads: ranks,
        }
    }

    /// Cap the number of OS threads used to execute the ranks (ranks beyond the cap
    /// run in later waves; see `mpi_sim::run_world_with_threads`).
    ///
    /// # Panics
    /// Panics if `max_threads == 0`.
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        assert!(max_threads > 0, "thread cap must be positive");
        self.max_threads = max_threads;
        self
    }

    /// Number of ranks (walks).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Run the job.
    pub fn run(&self, master_seed: u64) -> MultiWalkResult {
        let start = Instant::now();
        let spec = self.spec.clone();
        let reports: Vec<RankReport> = run_world_with_threads::<WinnerPayload, _, _>(
            self.ranks,
            self.max_threads,
            move |comm| {
                let rank = comm.rank();
                let mut engine = spec.build_engine(master_seed, rank);
                // The stop condition is the paper's non-blocking probe: it fires when
                // some other rank has announced a solution.
                let mut winner_seen = false;
                let result = {
                    let winner_seen = &mut winner_seen;
                    let comm_ref = &mut *comm;
                    let mut stop = FnStop(move || {
                        if FirstResponder::check(comm_ref).is_some() {
                            *winner_seen = true;
                            Some(StopReason::Cancelled)
                        } else {
                            None
                        }
                    });
                    engine.solve_until(&mut stop)
                };
                let mut announced = false;
                if result.status == SolveStatus::Solved {
                    let solution = result.solution.clone().expect("solved implies solution");
                    // Announce only if nobody else already did; a duplicate would be
                    // harmless (extra pending messages), but checking first mirrors
                    // the real implementation and keeps traffic minimal.
                    if !winner_seen && FirstResponder::check(comm).is_none() {
                        FirstResponder::announce(comm, solution).expect("announce");
                        announced = true;
                    }
                }
                RankReport { result, announced }
            },
        );

        let elapsed = start.elapsed();
        let winner = reports.iter().position(|r| r.announced).or_else(|| {
            reports
                .iter()
                .position(|r| r.result.status == SolveStatus::Solved)
        });
        let solution = winner.and_then(|w| reports[w].result.solution.clone());
        MultiWalkResult {
            solution,
            winner,
            elapsed,
            walks: self.ranks,
            walk_results: reports.into_iter().map(|r| r.result).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_search::AsConfig;
    use costas::is_costas_permutation;

    #[test]
    fn mpi_runner_solves_with_several_ranks() {
        let runner = MpiRunner::new(WalkSpec::costas(11), 4);
        let result = runner.run(7);
        assert!(result.solved());
        assert!(is_costas_permutation(result.solution.as_ref().unwrap()));
        assert_eq!(result.walks, 4);
        assert_eq!(result.walk_results.len(), 4);
        let winner = result.winner.unwrap();
        assert_eq!(result.walk_results[winner].status, SolveStatus::Solved);
    }

    #[test]
    fn mpi_runner_with_thread_cap_still_completes() {
        // 6 ranks on at most 2 threads: later waves start after earlier ones finish,
        // but every rank still solves or is stopped, and a solution is reported.
        let runner = MpiRunner::new(WalkSpec::costas(10), 6).with_max_threads(2);
        let result = runner.run(3);
        assert!(result.solved());
        assert_eq!(result.walk_results.len(), 6);
    }

    #[test]
    fn mpi_runner_reports_failure_when_budget_too_small() {
        let spec = WalkSpec::costas(18).with_config(AsConfig::builder().max_iterations(10).build());
        let runner = MpiRunner::new(spec, 3);
        let result = runner.run(1);
        assert!(!result.solved());
        assert_eq!(result.winner, None);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = MpiRunner::new(WalkSpec::costas(5), 0);
    }

    #[test]
    #[should_panic(expected = "thread cap must be positive")]
    fn zero_thread_cap_rejected() {
        let _ = MpiRunner::new(WalkSpec::costas(5), 2).with_max_threads(0);
    }
}
