//! # multiwalk — independent and cooperative multi-walk parallel local search
//!
//! The parallelisation scheme of the IPPS 2012 paper (§V) is *independent
//! multiple-walk* (also called multi-start): fork one sequential Adaptive Search
//! engine per core, each with its own decorrelated random seed, no communication
//! during the search, and terminate the whole job as soon as any walk finds a
//! solution (each walk polls for a termination message every `c` iterations).
//!
//! This crate provides three execution substrates for that scheme:
//!
//! * [`ThreadRunner`] — real OS-thread parallelism on the host, termination via a
//!   shared atomic flag.  This is what a user running on a multi-core workstation
//!   wants.
//! * [`MpiRunner`] — the same algorithm written against the [`mpi_sim`] message
//!   passing API (non-blocking probe every `c` iterations, winner announcement to all
//!   ranks), mirroring the paper's OpenMPI implementation structure.
//! * [`VirtualCluster`] — a deterministic simulator that reproduces the paper's
//!   *cluster-scale* experiments (32 … 8 192 cores) on a small host.  Walks are
//!   interleaved step by step and time is measured on a virtual clock whose unit is
//!   the engine iteration (the machine-independent unit Table I also reports); a
//!   [`PlatformProfile`] converts iterations to seconds for a given machine
//!   (HA8000, Grid'5000 Suno/Helios, JUGENE).  Because the walks are independent, the
//!   wall-clock of a K-core run is exactly the minimum over K walks of their
//!   completion times — the simulator computes that minimum by actually running the
//!   walks, not by assuming a distribution.  See DESIGN.md §4 for why this
//!   substitution preserves the paper's observable behaviour.
//!
//! [`WalkSpec`] describes the instance + engine configuration shared by every walk,
//! and seeds are derived per rank through the chaotic-map seeder of §III-B3.
//!
//! ## Cooperative mode
//!
//! Beyond the paper, [`CooperativeRunner`] runs the same walks *cooperatively*: every
//! `exchange_interval` iterations the globally best configuration is shared and
//! adopted by lagging walks ([`adaptive_search::Engine::inject_candidate`]), and a
//! stagnating job performs coordinated restarts
//! ([`adaptive_search::Engine::schedule_restart`]).  All three substrates are
//! supported — OS threads (shared elite pool), `mpi-sim` ranks
//! ([`mpi_sim::collectives::allreduce_min`] rounds) and the virtual cluster
//! (deterministic interleaved exchange on the virtual clock).
//!
//! **Use cooperation judiciously.**  Elite exchange helps on deep, hard instances
//! where a low intermediate cost signals genuine progress towards a solution, and it
//! makes coordinated diversification possible at cluster scale.  On small instances
//! it tends to *hurt*: the independent min-of-K effect already collapses the runtime
//! distribution (the paper's linear speed-ups rely exactly on the K walks being
//! i.i.d.), and adopting a shared elite correlates the walks, shrinking the effective
//! number of independent samples the minimum is taken over.  The
//! `coop_vs_independent` harness in the `bench` crate measures the ratio per core
//! count so the decision can be made from data.

pub mod campaign;
pub mod cooperative;
pub mod mpi_runner;
pub mod platform;
pub mod thread_runner;
pub mod virtual_cluster;
pub mod walker;

pub use campaign::{Campaign, CampaignError, CampaignSpec};
pub use cooperative::{CoopConfig, CoopResult, CooperativeRunner};
pub use mpi_runner::MpiRunner;
pub use platform::PlatformProfile;
pub use thread_runner::{MultiWalkResult, ThreadRunner};
pub use virtual_cluster::{SimulatedRun, VirtualCluster};
pub use walker::WalkSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use costas::is_costas_permutation;

    #[test]
    fn thread_runner_end_to_end() {
        let spec = WalkSpec::costas(12);
        let runner = ThreadRunner::new(spec, 4);
        let result = runner.run(2024);
        assert!(result.solved());
        assert!(is_costas_permutation(result.solution.as_ref().unwrap()));
    }
}
