//! Platform profiles for the virtual cluster.
//!
//! The paper evaluates the very same algorithm on three machines whose cores differ
//! only in speed (HA8000 Opteron 2.3 GHz, Grid'5000 Suno/Helios Xeon/Opteron ≈2.3 GHz,
//! JUGENE PowerPC 450 at 850 MHz — "significantly slower", §V-B).  Since independent
//! multi-walk performance is a function of (a) the per-core iteration rate and (b) the
//! runtime distribution of the sequential algorithm, a platform is fully described for
//! simulation purposes by a relative core-speed factor and a small start-up overhead.
//!
//! The factors below are derived from the paper's own cross-platform figures (e.g.
//! 1-core CAP 18: 6.76 s on HA8000 vs 5.28 s on Suno vs 8.16 s on Helios) and from the
//! stated 2.3 GHz vs 850 MHz clock ratio for JUGENE.  They only rescale absolute
//! seconds; speed-up curves are invariant to them.

/// A named machine profile used to convert virtual iterations into seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformProfile {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Core speed relative to the reference platform (HA8000 = 1.0).
    pub speed_factor: f64,
    /// Fixed per-job overhead in seconds (deployment/startup; the paper reports it as
    /// negligible on big benchmarks, so the defaults are 0).
    pub startup_seconds: f64,
    /// Largest core count the paper exercised on this platform (informational).
    pub max_cores: usize,
}

impl PlatformProfile {
    /// Hitachi HA8000 (University of Tokyo): AMD Opteron 2.3 GHz, up to 256 cores used.
    pub fn ha8000() -> Self {
        Self {
            name: "HA8000",
            speed_factor: 1.0,
            startup_seconds: 0.0,
            max_cores: 256,
        }
    }

    /// Grid'5000 Suno cluster (Sophia-Antipolis): Dell PowerEdge R410, 256 cores used.
    pub fn suno() -> Self {
        Self {
            name: "Grid5000/Suno",
            speed_factor: 1.20,
            startup_seconds: 0.0,
            max_cores: 256,
        }
    }

    /// Grid'5000 Helios cluster (Sophia-Antipolis): Sun Fire X4100, 128 cores used.
    pub fn helios() -> Self {
        Self {
            name: "Grid5000/Helios",
            speed_factor: 0.85,
            startup_seconds: 0.0,
            max_cores: 128,
        }
    }

    /// IBM Blue Gene/P JUGENE (Jülich): PowerPC 450 at 850 MHz, 8,192 cores used.
    pub fn jugene() -> Self {
        Self {
            name: "JUGENE",
            speed_factor: 0.30,
            startup_seconds: 0.0,
            max_cores: 8192,
        }
    }

    /// The local host, treated as the reference speed.
    pub fn local() -> Self {
        Self {
            name: "local",
            speed_factor: 1.0,
            startup_seconds: 0.0,
            max_cores: 1 << 20,
        }
    }

    /// All paper platforms, in the order the tables present them.
    pub fn paper_platforms() -> Vec<PlatformProfile> {
        vec![Self::ha8000(), Self::suno(), Self::helios(), Self::jugene()]
    }

    /// Convert a number of engine iterations into virtual seconds on this platform,
    /// given the reference platform's iteration rate.
    pub fn seconds_for(&self, iterations: u64, reference_iterations_per_second: f64) -> f64 {
        assert!(
            reference_iterations_per_second > 0.0,
            "iteration rate must be positive"
        );
        self.startup_seconds
            + iterations as f64 / (reference_iterations_per_second * self.speed_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_sane_factors() {
        for p in PlatformProfile::paper_platforms() {
            assert!(p.speed_factor > 0.0 && p.speed_factor <= 2.0, "{}", p.name);
            assert!(p.startup_seconds >= 0.0);
            assert!(p.max_cores >= 128);
        }
        assert!(PlatformProfile::jugene().speed_factor < PlatformProfile::ha8000().speed_factor);
    }

    #[test]
    fn seconds_scale_inversely_with_speed() {
        let iters = 1_000_000u64;
        let rate = 500_000.0;
        let fast = PlatformProfile::ha8000().seconds_for(iters, rate);
        let slow = PlatformProfile::jugene().seconds_for(iters, rate);
        assert!((fast - 2.0).abs() < 1e-9);
        assert!(slow > fast * 3.0);
    }

    #[test]
    fn startup_overhead_is_added() {
        let mut p = PlatformProfile::local();
        p.startup_seconds = 1.5;
        assert!((p.seconds_for(0, 1000.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        PlatformProfile::local().seconds_for(1, 0.0);
    }
}
