//! Shuffling and random permutations.
//!
//! Every restart of an Adaptive Search walk begins from a uniformly random
//! permutation (the CAP is a permutation problem), and the generic reset operator
//! re-randomises a percentage of the variables.  Both lean on an unbiased
//! Fisher–Yates shuffle.

use crate::range::RandExt;
use crate::Rng64;

/// Shuffle `items` in place with the (modern, backwards) Fisher–Yates algorithm.
///
/// Every one of the `n!` orderings is produced with equal probability given a uniform
/// generator.
pub fn fisher_yates<T, R: Rng64 + ?Sized>(items: &mut [T], rng: &mut R) {
    let n = items.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        items.swap(i, j);
    }
}

/// Produce a uniformly random permutation of `0..n` (0-based values).
pub fn random_permutation<R: Rng64 + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    fisher_yates(&mut p, rng);
    p
}

/// Choose `k` distinct indices out of `0..n` uniformly at random (partial
/// Fisher–Yates; O(n) memory, O(k) swaps).  The result is *not* sorted.
///
/// # Panics
/// Panics if `k > n`.
pub fn choose<R: Rng64 + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot choose {k} items out of {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.index(n - i);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    fn is_permutation(p: &[usize]) -> bool {
        let n = p.len();
        let mut seen = vec![false; n];
        for &x in p {
            if x >= n || seen[x] {
                return false;
            }
            seen[x] = true;
        }
        true
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = default_rng(1);
        let mut v: Vec<u32> = (0..50).collect();
        let mut expected = v.clone();
        fisher_yates(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = default_rng(2);
        let mut empty: Vec<u8> = vec![];
        fisher_yates(&mut empty, &mut rng);
        assert!(empty.is_empty());
        let mut one = vec![7u8];
        fisher_yates(&mut one, &mut rng);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mut rng = default_rng(3);
        for n in [0usize, 1, 2, 5, 17, 64] {
            let p = random_permutation(n, &mut rng);
            assert_eq!(p.len(), n);
            assert!(is_permutation(&p));
        }
    }

    #[test]
    fn permutation_distribution_is_roughly_uniform_for_n3() {
        // All 6 permutations of 3 elements should appear with similar frequency.
        let mut rng = default_rng(4);
        let mut counts = std::collections::HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            let p = random_permutation(3, &mut rng);
            *counts.entry(p).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = n as f64 / 6.0;
        for (p, &c) in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "permutation {p:?} count {c}"
            );
        }
    }

    #[test]
    fn choose_returns_distinct_in_range() {
        let mut rng = default_rng(5);
        for (n, k) in [(10usize, 3usize), (10, 10), (10, 0), (1, 1), (100, 37)] {
            let c = choose(n, k, &mut rng);
            assert_eq!(c.len(), k);
            let set: std::collections::HashSet<_> = c.iter().collect();
            assert_eq!(set.len(), k, "duplicates in {c:?}");
            assert!(c.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot choose")]
    fn choose_more_than_available_panics() {
        let mut rng = default_rng(6);
        choose(3, 4, &mut rng);
    }

    #[test]
    fn choose_covers_all_elements_over_many_draws() {
        let mut rng = default_rng(7);
        let mut seen = [false; 20];
        for _ in 0..2_000 {
            for i in choose(20, 2, &mut rng) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
