//! Hierarchical seed sequences.
//!
//! Reproducible parallel experiments need a *tree* of seeds: one master seed per
//! experiment, one child per table cell (instance size × core count), one grandchild
//! per replicate run, one great-grandchild per simulated core.  [`SeedSequence`]
//! derives such children deterministically and collision-free in practice, so an
//! entire multi-table benchmark campaign can be reproduced from a single integer.

use crate::chaotic::ChaoticSeeder;
use crate::splitmix::SplitMix64;
use crate::{DefaultRng, Xoshiro256StarStar};

/// A node in a deterministic seed-derivation tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    /// Mixed entropy of the path from the root to this node.
    key: u64,
    /// Depth of this node (root = 0); folded into children so that
    /// `root.child(a).child(b)` differs from `root.child(b).child(a)`.
    depth: u32,
}

impl SeedSequence {
    /// Create the root of a seed tree.
    pub fn new(master_seed: u64) -> Self {
        Self {
            key: SplitMix64::mix(master_seed ^ DOMAIN_TAG),
            depth: 0,
        }
    }

    /// Derive the `index`-th child of this node.
    pub fn child(&self, index: u64) -> Self {
        let mixed = SplitMix64::mix(
            self.key
                .rotate_left(17)
                .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407))
                ^ ((self.depth as u64) << 56),
        );
        Self {
            key: mixed,
            depth: self.depth + 1,
        }
    }

    /// The 64-bit seed represented by this node.
    pub fn seed(&self) -> u64 {
        self.key
    }

    /// Materialise this node as the workspace default generator.
    pub fn rng(&self) -> DefaultRng {
        Xoshiro256StarStar::seed_from_u64(self.key)
    }

    /// Materialise a chaotic per-rank seeder rooted at this node — this is what the
    /// multi-walk runner hands to its workers (paper §III-B3).
    pub fn chaotic_seeder(&self) -> ChaoticSeeder {
        ChaoticSeeder::new(self.key)
    }

    /// Convenience: derive `count` child seeds at once.
    pub fn child_seeds(&self, count: usize) -> Vec<u64> {
        (0..count as u64).map(|i| self.child(i).seed()).collect()
    }
}

/// Domain-separation tag so that `SeedSequence::new(0)` differs from a raw
/// `SplitMix64::mix(0)` used elsewhere for unrelated purposes.
const DOMAIN_TAG: u64 = 0xC057_A500_0000_2012;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_same_seed() {
        let a = SeedSequence::new(5).child(3).child(1);
        let b = SeedSequence::new(5).child(3).child(1);
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn sibling_seeds_differ() {
        let root = SeedSequence::new(10);
        let seeds = root.child_seeds(1000);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len());
    }

    #[test]
    fn path_order_matters() {
        let root = SeedSequence::new(7);
        assert_ne!(root.child(1).child(2).seed(), root.child(2).child(1).seed());
    }

    #[test]
    fn depth_matters() {
        let root = SeedSequence::new(7);
        assert_ne!(root.child(0).seed(), root.child(0).child(0).seed());
    }

    #[test]
    fn deep_trees_stay_collision_free_in_sample() {
        let root = SeedSequence::new(123);
        let mut seeds = Vec::new();
        for a in 0..10u64 {
            for b in 0..10u64 {
                for c in 0..10u64 {
                    seeds.push(root.child(a).child(b).child(c).seed());
                }
            }
        }
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len());
    }

    #[test]
    fn rng_and_seeder_are_usable() {
        let node = SeedSequence::new(2).child(4);
        let mut r1 = node.rng();
        let mut r2 = node.rng();
        assert_eq!(
            crate::Rng64::next_u64(&mut r1),
            crate::Rng64::next_u64(&mut r2)
        );
        let seeder = node.chaotic_seeder();
        assert_eq!(seeder.master_seed(), node.seed());
    }
}
