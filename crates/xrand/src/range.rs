//! Ergonomic sampling helpers layered over any [`Rng64`].
//!
//! Local search spends most of its random budget on three primitive draws:
//! a uniform index below some bound (variable / value selection), a Bernoulli draw
//! (plateau-following probability), and occasionally a uniform float.  These are
//! provided here as an extension trait so every generator in the crate — and any
//! user-supplied one — gets them for free.
//!
//! Bounded integers use Lemire's multiply-then-reject method, which avoids the modulo
//! bias of `x % n` while needing on average far less than one rejection per draw.

use crate::Rng64;

/// Extension methods available on every [`Rng64`].
pub trait RandExt: Rng64 {
    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's method: multiply a 64-bit draw by the bound and keep the high word,
        // rejecting the small biased region of the low word.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn f64(&mut self) -> f64 {
        // Take the top 53 bits and scale by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn bool_with_prob(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed draw with rate `lambda` (mean `1/lambda`), via
    /// inversion sampling.  Used by the runtime-distribution tooling and by tests
    /// that validate the shifted-exponential fit of the time-to-target analysis.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential() requires lambda > 0");
        let u = 1.0 - self.f64(); // in (0, 1]
        -u.ln() / lambda
    }

    /// Pick one element of a non-empty slice uniformly at random.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.index(items.len())]
    }
}

impl<R: Rng64 + ?Sized> RandExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    #[test]
    fn below_respects_bound() {
        let mut rng = default_rng(1);
        for bound in [1u64, 2, 3, 7, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut rng = default_rng(9);
        for _ in 0..50 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        let mut rng = default_rng(9);
        rng.below(0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = default_rng(77);
        let bound = 10u64;
        let n = 100_000;
        let mut counts = vec![0u32; bound as usize];
        for _ in 0..n {
            counts[rng.below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = default_rng(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_inclusive(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = default_rng(5);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bool_with_prob_extremes_and_rate() {
        let mut rng = default_rng(6);
        assert!(!rng.bool_with_prob(0.0));
        assert!(rng.bool_with_prob(1.0));
        assert!(!rng.bool_with_prob(-0.5));
        assert!(rng.bool_with_prob(1.5));
        let hits = (0..20_000).filter(|_| rng.bool_with_prob(0.9)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.9).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = default_rng(11);
        let lambda = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn pick_returns_existing_elements() {
        let mut rng = default_rng(12);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
