//! A 64-bit multiplicative–congruential generator (MCG/LCG) baseline.
//!
//! The paper notes (§III-B3) that "using a generic random function can turn out to be
//! insufficient" once hundreds of stochastic processes run concurrently.  To let the
//! test-suite and the ablation benches *demonstrate* that claim rather than assert it,
//! this module keeps a deliberately old-fashioned generator around: the classic
//! 64-bit LCG with the Knuth MMIX multiplier.  Its low-order bits have short periods,
//! which is precisely the kind of structure the chaotic seeder and xoshiro avoid.

use crate::Rng64;

/// Knuth's MMIX linear congruential generator: `x ← a·x + c (mod 2^64)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
}

/// MMIX multiplier (Knuth, TAOCP vol. 2).
pub const MMIX_MULTIPLIER: u64 = 6364136223846793005;
/// MMIX increment.
pub const MMIX_INCREMENT: u64 = 1442695040888963407;

impl Lcg64 {
    /// Create an LCG with the given starting state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advance one step and return the *raw* new state (all 64 bits, including the
    /// weak low bits).  [`Rng64::next_u64`] instead returns the state xor-folded so
    /// the weakness is milder but still measurable.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(MMIX_MULTIPLIER)
            .wrapping_add(MMIX_INCREMENT);
        self.state
    }
}

impl Rng64 for Lcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let x = self.next_raw();
        // xorshift the high bits down; keeps the generator cheap while hiding the
        // worst of the low-bit regularity.
        x ^ (x >> 33)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_matches_definition() {
        let mut lcg = Lcg64::new(42);
        let s1 = lcg.next_raw();
        assert_eq!(
            s1,
            42u64
                .wrapping_mul(MMIX_MULTIPLIER)
                .wrapping_add(MMIX_INCREMENT)
        );
        let s2 = lcg.next_raw();
        assert_eq!(
            s2,
            s1.wrapping_mul(MMIX_MULTIPLIER)
                .wrapping_add(MMIX_INCREMENT)
        );
    }

    #[test]
    fn low_bit_of_raw_state_alternates() {
        // The lowest bit of a maximal-period LCG mod 2^64 has period 2 when the
        // increment is odd: this is the structural weakness we keep for comparison.
        let mut lcg = Lcg64::new(7);
        let bits: Vec<u64> = (0..16).map(|_| lcg.next_raw() & 1).collect();
        for w in bits.windows(2) {
            assert_ne!(w[0], w[1], "low bit must alternate: {bits:?}");
        }
    }

    #[test]
    fn folded_output_hides_low_bit_period() {
        let mut lcg = Lcg64::new(7);
        let bits: Vec<u64> = (0..64).map(|_| lcg.next_u64() & 1).collect();
        // Not strictly alternating once folded.
        assert!(bits.windows(2).any(|w| w[0] == w[1]));
    }

    #[test]
    fn deterministic_and_clonable() {
        let mut a = Lcg64::new(100);
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
