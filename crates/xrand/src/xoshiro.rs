//! Xoshiro256**: the work-horse generator used inside every search walk.
//!
//! Xoshiro256** (Blackman & Vigna, 2018) has 256 bits of state, a period of 2^256 − 1,
//! passes BigCrush, and needs only a handful of shifts/rotates per output — exactly
//! the profile a local-search inner loop wants.  The `jump()` function advances the
//! stream by 2^128 steps, giving non-overlapping sub-streams for parallel walkers as
//! an alternative to independent seeding.

use crate::splitmix::SplitMix64;
use crate::Rng64;

/// The xoshiro256** 1.0 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Construct from a full 256-bit state.  The state must not be all zeroes.
    ///
    /// # Panics
    /// Panics if all four words are zero (the all-zero state is a fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must not be all zero"
        );
        Self { s }
    }

    /// Seed from a single 64-bit value, expanding it through SplitMix64 as recommended
    /// by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output can only be all-zero with negligible probability, but the
        // constructor still guards the degenerate case.
        Self::from_state(s)
    }

    /// Return a copy of the internal state (useful for checkpointing a walk).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advance the generator by 2^128 steps.
    ///
    /// Calling `jump()` k times on generators cloned from the same state yields
    /// non-overlapping sub-sequences of length 2^128, which can be handed to parallel
    /// workers when fully independent seeding is not desired.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &jump_word in JUMP.iter() {
            for b in 0..64 {
                if (jump_word & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Derive the k-th jumped sub-stream from this generator without mutating it.
    pub fn substream(&self, k: usize) -> Self {
        let mut g = self.clone();
        for _ in 0..k {
            g.jump();
        }
        g
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector: with state {1, 2, 3, 4} the first outputs of the xoshiro256**
    /// 1.0 reference implementation are 11520, 0, 1509978240, ... .  The fourth value
    /// is pinned from this implementation to guard against accidental changes.
    #[test]
    fn matches_reference_vector() {
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1509978240);
        assert_eq!(rng.next_u64(), 1215971899390074240);
    }

    #[test]
    #[should_panic(expected = "must not be all zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_sensitive() {
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        let mut c = Xoshiro256StarStar::seed_from_u64(6);
        let mut equal_ac = 0;
        for _ in 0..256 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x == c.next_u64() {
                equal_ac += 1;
            }
        }
        assert!(equal_ac < 4);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let base = Xoshiro256StarStar::seed_from_u64(123);
        let mut a = base.substream(0);
        let mut b = base.substream(1);
        let mut c = base.substream(2);
        let pa: Vec<u64> = (0..512).map(|_| a.next_u64()).collect();
        let pb: Vec<u64> = (0..512).map(|_| b.next_u64()).collect();
        let pc: Vec<u64> = (0..512).map(|_| c.next_u64()).collect();
        let sa: std::collections::HashSet<_> = pa.iter().collect();
        assert!(pb.iter().all(|x| !sa.contains(x)));
        assert!(pc.iter().all(|x| !sa.contains(x)));
        assert_ne!(pb, pc);
    }

    #[test]
    fn output_roughly_uniform_in_bytes() {
        // Chi-squared style sanity check on the top byte over 64k draws.
        let mut rng = Xoshiro256StarStar::seed_from_u64(2024);
        let mut counts = [0u32; 256];
        let n = 65_536;
        for _ in 0..n {
            counts[(rng.next_u64() >> 56) as usize] += 1;
        }
        let expected = n as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 255 degrees of freedom; mean 255, std ~ 22.6.  Accept a very wide band.
        assert!(chi2 > 150.0 && chi2 < 400.0, "chi2 = {chi2}");
    }
}
