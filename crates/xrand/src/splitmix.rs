//! SplitMix64: a tiny, fast, full-period 64-bit generator.
//!
//! SplitMix64 (Steele, Lea & Flood, 2014) walks a 64-bit counter with a Weyl increment
//! and applies a strong avalanche finaliser.  It is not meant as the main search
//! generator (its state is only 64 bits) but it is ideal for two jobs in this
//! workspace:
//!
//! 1. *Seed whitening*: turning low-entropy seeds (0, 1, 2, …, or a rank index) into
//!    well-spread 64-bit words, which is exactly how [`crate::Xoshiro256StarStar`]
//!    fills its 256-bit state.
//! 2. Cheap auxiliary randomness where speed matters more than period length.

use crate::Rng64;

/// The SplitMix64 generator.  Each call advances the state by a fixed odd constant
/// (a Weyl sequence), so the period is exactly 2^64 and every 64-bit value is produced
/// exactly once per period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio based Weyl increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator whose first output is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Apply the SplitMix64 finaliser to a single word without creating a generator.
    ///
    /// Useful as a general-purpose 64-bit avalanche/mix function (e.g. hashing a
    /// `(run, rank)` pair into a seed).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Current internal state (the Weyl counter).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        Self::mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First output for seed 0, as produced by the public-domain C reference
    /// implementation by Sebastiano Vigna (prng.di.unimi.it/splitmix64.c).
    #[test]
    fn matches_reference_first_output_for_seed_zero() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    /// The finaliser must avalanche: flipping one input bit should flip roughly half
    /// of the output bits (we accept a generous 16..48 window).
    #[test]
    fn mix_avalanches() {
        for bit in 0..64 {
            let a = SplitMix64::mix(0x0123_4567_89AB_CDEF);
            let b = SplitMix64::mix(0x0123_4567_89AB_CDEF ^ (1u64 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_is_a_bijection_on_samples() {
        // A bijection cannot collide; check a decent sample of structured inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(SplitMix64::mix(i)));
        }
    }

    #[test]
    fn period_walks_the_weyl_sequence() {
        let mut rng = SplitMix64::new(17);
        rng.next_u64();
        assert_eq!(rng.state(), 17u64.wrapping_add(GOLDEN_GAMMA));
        rng.next_u64();
        assert_eq!(
            rng.state(),
            17u64.wrapping_add(GOLDEN_GAMMA.wrapping_mul(2))
        );
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SplitMix64::new(99);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
