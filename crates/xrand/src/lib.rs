//! # xrand — deterministic random number generation for massively parallel stochastic search
//!
//! The IPPS 2012 Costas-array paper (§III-B3) stresses that a massively parallel
//! independent multi-walk search needs (a) a fast, statistically sound generator inside
//! each walk and (b) a careful way of producing *decorrelated seeds* for hundreds or
//! thousands of concurrent walks.  The authors seed each MPI process with a value
//! produced by a pseudo-random generator based on a *piecewise linear chaotic map*
//! (in the spirit of the Trident generator).
//!
//! This crate provides exactly those two ingredients, with no external dependencies:
//!
//! * [`SplitMix64`] — tiny, fast generator; also used to whiten seeds.
//! * [`Xoshiro256StarStar`] — the work-horse generator used inside each search walk.
//! * [`Lcg64`] — a classic 64-bit multiplicative LCG, kept as a deliberately *weaker*
//!   baseline so that the statistical-quality comparisons in the test-suite and the
//!   seed-quality discussion of the paper can be exercised.
//! * [`ChaoticSeeder`] — piecewise-linear chaotic-map seed sequence for per-rank seeds.
//! * [`SeedSequence`] — hierarchical seed derivation (worker trees, reproducible runs).
//! * [`Rng64`] / [`RandExt`] — the minimal trait plus ergonomic helpers (unbiased
//!   bounded integers, floats, Bernoulli draws, Fisher–Yates shuffling).
//!
//! Everything is deterministic; every generator implements `Clone` so a search state
//! can be snapshotted and replayed.

pub mod chaotic;
pub mod lcg;
pub mod range;
pub mod seq;
pub mod shuffle;
pub mod splitmix;
pub mod xoshiro;

pub use chaotic::ChaoticSeeder;
pub use lcg::Lcg64;
pub use range::RandExt;
pub use seq::SeedSequence;
pub use shuffle::{choose, fisher_yates, random_permutation};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// Minimal pseudo-random generator interface: a stream of 64-bit words.
///
/// All higher-level functionality (bounded integers, floats, shuffles, …) is layered
/// on top via the [`RandExt`] extension trait, so implementing a new generator only
/// requires producing uniformly distributed `u64` values.
pub trait Rng64 {
    /// Return the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32-bit word (upper half of the 64-bit output by default,
    /// which is the better half for xoshiro-style generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The default generator used throughout the workspace for search walks.
pub type DefaultRng = Xoshiro256StarStar;

/// Construct the default generator from a 64-bit seed (whitened through SplitMix64,
/// so low-entropy seeds such as 0, 1, 2, … are fine).
pub fn default_rng(seed: u64) -> DefaultRng {
    Xoshiro256StarStar::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rng_is_deterministic() {
        let mut a = default_rng(42);
        let mut b = default_rng(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn default_rng_differs_across_seeds() {
        let mut a = default_rng(1);
        let mut b = default_rng(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams for different seeds should diverge");
    }

    #[test]
    fn next_u32_uses_high_bits() {
        struct Fixed(u64);
        impl Rng64 for Fixed {
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        let mut f = Fixed(0xDEAD_BEEF_0000_0001);
        assert_eq!(f.next_u32(), 0xDEAD_BEEF);
    }

    #[test]
    fn trait_object_and_mut_ref_usable() {
        let mut rng = default_rng(7);
        fn take(r: &mut dyn Rng64) -> u64 {
            r.next_u64()
        }
        let x = take(&mut rng);
        let y = take(&mut rng);
        assert_ne!(x, y);
    }
}
