//! Chaotic-map seed generation for parallel walks.
//!
//! §III-B3 of the paper: *"To ensure equity, we choose to generate the seed used by
//! each process via a pseudo-random number generator based on a linear chaotic map"*
//! (citing the Trident generator of Orúe et al.).  The point of that design is that
//! consecutive ranks (0, 1, 2, …) must not receive correlated seeds — a real risk when
//! seeds are derived as `base + rank` and fed to a weak generator.
//!
//! [`ChaoticSeeder`] implements a fixed-point *piecewise linear chaotic map* (PWLCM),
//! iterated a few times per seed and whitened with the SplitMix64 finaliser.  The map
//! is the classical skew tent map
//!
//! ```text
//!   x_{k+1} = x_k / p          if x_k < p
//!   x_{k+1} = (1 - x_k)/(1-p)  otherwise
//! ```
//!
//! computed in 0.64 fixed point so the sequence is exactly reproducible across
//! platforms (no floating-point rounding drift).  Successive outputs are additionally
//! decorrelated by re-keying the map with the rank through the golden-ratio Weyl
//! increment.

use crate::splitmix::{SplitMix64, GOLDEN_GAMMA};

/// Number of map iterations applied per produced seed.  A handful of iterations is
/// enough to leave the transient of the map; more costs time with no measurable gain.
const WARMUP_ITERATIONS: u32 = 8;

/// A deterministic seed generator based on a piecewise linear chaotic map.
///
/// Two usage patterns are supported:
///
/// * streaming: [`ChaoticSeeder::next_seed`] produces an endless sequence of seeds;
/// * indexed: [`ChaoticSeeder::seed_for_rank`] produces the seed of a given MPI-style
///   rank directly, without generating the earlier ones — this is what the multi-walk
///   runner uses so that a walk's behaviour depends only on `(master_seed, rank)` and
///   not on how many other walks exist.
#[derive(Debug, Clone)]
pub struct ChaoticSeeder {
    master: u64,
    /// Current state of the map in 0.64 fixed point (interpreted as x ∈ (0,1)).
    x: u64,
    /// Break point p of the skew tent map in 0.64 fixed point.
    p: u64,
    /// How many seeds have been emitted so far (streaming mode).
    emitted: u64,
}

impl ChaoticSeeder {
    /// Create a seeder from a master seed.  Two seeders with the same master seed
    /// generate identical sequences.
    pub fn new(master_seed: u64) -> Self {
        let mut sm = SplitMix64::new(master_seed);
        // x must be in (0, 1) exclusive: force at least one low bit and not all ones.
        let x = Self::clamp_unit(crate::Rng64::next_u64(&mut sm));
        // p in roughly (0.2, 0.8) to stay away from the degenerate tent corners.
        let raw = crate::Rng64::next_u64(&mut sm);
        let p = (u64::MAX / 5) + raw % (u64::MAX / 5 * 3);
        Self {
            master: master_seed,
            x,
            p,
            emitted: 0,
        }
    }

    fn clamp_unit(v: u64) -> u64 {
        // keep x strictly inside (0, 1): avoid 0 and u64::MAX fixed points
        if v == 0 {
            1
        } else if v == u64::MAX {
            u64::MAX - 1
        } else {
            v
        }
    }

    /// One step of the skew tent map in 0.64 fixed point arithmetic.
    #[inline]
    fn tent_step(x: u64, p: u64) -> u64 {
        // Interpret x, p as fractions of 2^64.  The divisions below are exact 128-bit
        // scaled divisions: x/p and (1-x)/(1-p) mapped back to 0.64 fixed point.
        let out = if x < p {
            (((x as u128) << 64) / (p as u128)) as u64
        } else {
            let num = (u64::MAX - x) as u128;
            let den = (u64::MAX - p) as u128;
            ((num << 64) / den.max(1)) as u64
        };
        Self::clamp_unit(out)
    }

    /// Produce the next seed in streaming order.
    pub fn next_seed(&mut self) -> u64 {
        let rank = self.emitted;
        self.emitted += 1;
        // advance the shared trajectory so streaming mode also mixes map dynamics
        for _ in 0..WARMUP_ITERATIONS {
            self.x = Self::tent_step(self.x, self.p);
        }
        self.x ^= GOLDEN_GAMMA.wrapping_mul(rank.wrapping_add(1));
        self.x = Self::clamp_unit(self.x);
        self.seed_for_rank(rank)
    }

    /// Produce the seed for a given rank, independent of streaming state.
    ///
    /// The construction: start the map from a state keyed by `(master, rank)`, iterate
    /// the chaotic map, then whiten with SplitMix64.  The chaotic iteration spreads
    /// nearby ranks across the unit interval; the whitening removes any residual
    /// piecewise-linear structure.
    pub fn seed_for_rank(&self, rank: u64) -> u64 {
        let mut x = Self::clamp_unit(SplitMix64::mix(
            self.master ^ rank.wrapping_mul(GOLDEN_GAMMA),
        ));
        let mut acc = 0u64;
        for i in 0..WARMUP_ITERATIONS {
            x = Self::tent_step(x, self.p);
            acc = acc.rotate_left(19) ^ x ^ (i as u64);
        }
        SplitMix64::mix(acc ^ self.master.rotate_left(32) ^ rank)
    }

    /// Produce seeds for ranks `0..count` in one call.
    pub fn seeds(&self, count: usize) -> Vec<u64> {
        (0..count as u64).map(|r| self.seed_for_rank(r)).collect()
    }

    /// The master seed this seeder was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_master() {
        let a = ChaoticSeeder::new(42);
        let b = ChaoticSeeder::new(42);
        assert_eq!(a.seeds(100), b.seeds(100));
    }

    #[test]
    fn different_masters_give_different_sequences() {
        let a = ChaoticSeeder::new(1);
        let b = ChaoticSeeder::new(2);
        let sa = a.seeds(64);
        let sb = b.seeds(64);
        let common = sa.iter().filter(|s| sb.contains(s)).count();
        assert!(common < 2);
    }

    #[test]
    fn ranks_get_distinct_seeds() {
        let s = ChaoticSeeder::new(7);
        let seeds = s.seeds(4096);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len(), "seed collision among 4096 ranks");
    }

    #[test]
    fn adjacent_ranks_are_decorrelated() {
        // Hamming distance between seeds of adjacent ranks should look like that of
        // independent uniform words: ~32 bits, never pathologically small.
        let s = ChaoticSeeder::new(2012);
        let seeds = s.seeds(1024);
        let mut min_dist = 64;
        let mut total = 0u64;
        for w in seeds.windows(2) {
            let d = (w[0] ^ w[1]).count_ones();
            min_dist = min_dist.min(d);
            total += d as u64;
        }
        let mean = total as f64 / (seeds.len() - 1) as f64;
        assert!(
            min_dist >= 10,
            "adjacent seeds too similar: {min_dist} bits"
        );
        assert!((mean - 32.0).abs() < 3.0, "mean hamming distance {mean}");
    }

    #[test]
    fn streaming_and_indexed_agree() {
        let mut s = ChaoticSeeder::new(99);
        let streamed: Vec<u64> = (0..32).map(|_| s.next_seed()).collect();
        let fresh = ChaoticSeeder::new(99);
        let indexed = fresh.seeds(32);
        assert_eq!(streamed, indexed);
    }

    #[test]
    fn tent_step_stays_in_open_unit_interval() {
        let s = ChaoticSeeder::new(5);
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = ChaoticSeeder::tent_step(x, s.p);
            assert!(x != 0 && x != u64::MAX);
        }
    }

    #[test]
    fn seed_bits_are_balanced_across_ranks() {
        // Each bit position should be set in roughly half of the seeds.
        let s = ChaoticSeeder::new(31337);
        let n = 2048usize;
        let seeds = s.seeds(n);
        for bit in 0..64 {
            let ones = seeds.iter().filter(|&&v| v & (1u64 << bit) != 0).count();
            let frac = ones as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.06, "bit {bit} frac {frac}");
        }
    }
}
