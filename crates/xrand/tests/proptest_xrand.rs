//! Property-based tests for the xrand crate: invariants that must hold for *every*
//! seed and bound, not just the hand-picked ones in the unit tests.

use proptest::prelude::*;
use xrand::{
    choose, default_rng, fisher_yates, random_permutation, ChaoticSeeder, Lcg64, RandExt, Rng64,
    SeedSequence, SplitMix64, Xoshiro256StarStar,
};

fn is_permutation(p: &[usize]) -> bool {
    let n = p.len();
    let mut seen = vec![false; n];
    for &x in p {
        if x >= n || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

proptest! {
    #[test]
    fn below_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..=1_000_000) {
        let mut rng = default_rng(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn f64_is_in_unit_interval(seed in any::<u64>()) {
        let mut rng = default_rng(seed);
        for _ in 0..64 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_inclusive_hits_interval(seed in any::<u64>(), lo in -1000i64..1000, span in 0i64..500) {
        let hi = lo + span;
        let mut rng = default_rng(seed);
        for _ in 0..16 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn shuffle_is_a_permutation_of_input(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = default_rng(seed);
        let mut v: Vec<usize> = (0..n).collect();
        fisher_yates(&mut v, &mut rng);
        prop_assert!(is_permutation(&v));
    }

    #[test]
    fn random_permutation_valid(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = default_rng(seed);
        prop_assert!(is_permutation(&random_permutation(n, &mut rng)));
    }

    #[test]
    fn choose_returns_distinct_subset(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac).floor() as usize;
        let mut rng = default_rng(seed);
        let c = choose(n, k, &mut rng);
        prop_assert_eq!(c.len(), k);
        let set: std::collections::HashSet<_> = c.iter().copied().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(c.iter().all(|&x| x < n));
    }

    #[test]
    fn generators_are_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256StarStar::seed_from_u64(seed);
        let mut b = Xoshiro256StarStar::seed_from_u64(seed);
        let mut c = SplitMix64::new(seed);
        let mut d = SplitMix64::new(seed);
        let mut e = Lcg64::new(seed);
        let mut f = Lcg64::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(c.next_u64(), d.next_u64());
            prop_assert_eq!(e.next_u64(), f.next_u64());
        }
    }

    #[test]
    fn chaotic_seeder_rank_seeds_are_distinct(master in any::<u64>(), count in 2usize..256) {
        let seeder = ChaoticSeeder::new(master);
        let seeds = seeder.seeds(count);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        prop_assert_eq!(set.len(), seeds.len());
    }

    #[test]
    fn seed_sequence_children_are_distinct(master in any::<u64>(), count in 2usize..256) {
        let root = SeedSequence::new(master);
        let seeds = root.child_seeds(count);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        prop_assert_eq!(set.len(), seeds.len());
    }

    #[test]
    fn exponential_draws_are_positive(seed in any::<u64>(), lambda in 0.001f64..100.0) {
        let mut rng = default_rng(seed);
        for _ in 0..16 {
            prop_assert!(rng.exponential(lambda) >= 0.0);
        }
    }
}
