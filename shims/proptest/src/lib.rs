//! Minimal, dependency-free stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, for build environments with no crates.io access (see `shims/README.md`).
//!
//! It implements the subset of the proptest API this workspace's test-suites use —
//! the [`proptest!`] macro (including `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map`, [`any`], range and tuple strategies, [`collection::vec`] and the
//! `prop_assert*` macros — with the same import paths, so tests written against the
//! real crate compile unmodified.
//!
//! Design differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the test name and case number;
//!   generation is deterministic per test, so the failure reproduces exactly.
//! * **CI-friendly case counts.** The default is 64 cases per property (real
//!   proptest defaults to 256), overridable globally with the `PROPTEST_CASES`
//!   environment variable or per-block with `#![proptest_config(..)]`.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64 core).
///
/// Seeded from the property's name so every test gets an independent, reproducible
/// stream regardless of the order tests run in.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 whitening.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Next 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased integer in `[0, bound)` (bound > 0), via rejection sampling.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construct the per-test generator. Used by the [`proptest!`] expansion; public so
/// the macro can reach it from other crates.
pub fn test_rng(test_name: &str) -> TestRng {
    TestRng::from_name(test_name)
}

/// Runtime configuration for a `proptest!` block.
///
/// Only the fields this workspace uses are present; construct with struct-update
/// syntax as with the real crate: `ProptestConfig { cases: 12, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Shrink-iteration budget. Accepted for source compatibility with the real
    /// crate; the shim performs no shrinking, so this is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    /// Default case count: the `PROPTEST_CASES` environment variable when set,
    /// otherwise 64 (kept low so `cargo test -q` stays CI-friendly on the
    /// stochastic solver tests).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of one type. The shim equivalent of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (as in real proptest).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy (shim of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full value range of `T`, returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full 64-bit span: every word is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Widen [0,1) slightly so the inclusive upper bound is reachable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length (shim of proptest's
    /// `SizeRange`). Mirroring the real crate, only `usize`-based ranges convert
    /// into it — which is what lets `vec(elem, 0..50)` infer `usize` for the
    /// untyped literals.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `vec(element, 0..50)`: a vector whose length is drawn from the given
    /// range and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_inclusive - self.len.lo + 1) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Shim of `prop_assert!`: like `assert!`, panicking on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Shim of `prop_assert_eq!`: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Shim of `prop_assert_ne!`: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Shim of the `proptest!` macro.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) { ... }
/// }
/// ```
///
/// Each property becomes a `#[test]` that samples its strategies `config.cases`
/// times from a deterministic per-test stream and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    $body
                }
            }
        )*
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_rng("ranges_sample_in_bounds");
        for _ in 0..1000 {
            let v = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strategy = (1usize..=4, any::<u64>()).prop_map(|(n, seed)| vec![seed; n]);
        let mut rng = crate::test_rng("prop_map_and_tuples_compose");
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strategy = collection::vec(0usize..3, 2usize..5);
        let mut rng = crate::test_rng("vec_strategy_respects_length_range");
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_rng("same-name");
        let mut b = crate::test_rng("same-name");
        let mut c = crate::test_rng("other-name");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 17, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, v in collection::vec(any::<bool>(), 0usize..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
        }
    }
}
