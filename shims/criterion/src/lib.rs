//! Minimal, dependency-free stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate, for build environments with no crates.io access (see
//! `shims/README.md`).
//!
//! It implements the subset of the criterion API this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with the same import paths,
//! so benches written against the real crate compile unmodified.
//!
//! Instead of criterion's statistical machinery it runs each benchmark for
//! `sample_size` timed batches (after one warm-up batch) and prints a one-line
//! `mean / min / max` per-iteration summary. That is enough to compare variants
//! locally; it makes no claims of statistical rigour and writes no reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring criterion's `black_box` (which is `std::hint::black_box`
/// on recent toolchains).
pub use std::hint::black_box;

/// Iterations per timed batch (the shim's stand-in for criterion's auto-tuning).
const ITERS_PER_SAMPLE: u64 = 1;

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `f`, passing it `input` (the criterion parametrised-bench form).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f` under a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Close the group (no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of one parametrised benchmark: `BenchmarkId::new("solve", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter value into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one duration per batch. The closure's return value
    /// is passed through [`black_box`] so the computation is not optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up batch (not recorded).
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        iters_per_sample: ITERS_PER_SAMPLE,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {label:<50} (no samples: closure never called iter)");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    eprintln!(
        "  {label:<50} mean {} | min {} | max {} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        per_iter.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:8.3} s ")
    } else if seconds >= 1e-3 {
        format!("{:8.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:8.3} µs", seconds * 1e6)
    } else {
        format!("{:8.1} ns", seconds * 1e9)
    }
}

/// Shim of `criterion_group!`: bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim of `criterion_main!`: the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn group_runner_executes_all_targets() {
        smoke();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 13).label, "solve/13");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
