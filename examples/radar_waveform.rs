//! Radar / sonar frequency-hop waveform design with Costas arrays.
//!
//! ```text
//! cargo run --release --example radar_waveform [order]
//! ```
//!
//! Costas arrays were invented (Costas, 1965/1984) to schedule the frequency hops of a
//! sonar/radar pulse train so that the waveform's *ambiguity function* has ideal
//! "thumbtack" behaviour: any non-zero combination of time shift and Doppler (frequency)
//! shift of the pattern coincides with the original in **at most one** pulse.  That is
//! exactly the distinct-difference-vectors property.
//!
//! This example builds a hop schedule for a requested number of pulses by solving the
//! CAP with Adaptive Search, then *verifies the radar-relevant property directly*: it
//! computes the full discrete cross-ambiguity table (number of coincidences for every
//! (delay, Doppler) offset) and checks that all sidelobes are ≤ 1, comparing against a
//! naive linear-sweep schedule whose ambiguity function is terrible.

use costas_lab::prelude::*;

/// Number of (time, frequency) coincidences between the hop pattern and itself shifted
/// by `dt` time slots and `df` frequency bins.
fn coincidences(pattern: &[usize], dt: i64, df: i64) -> usize {
    let n = pattern.len() as i64;
    let mut count = 0;
    for t in 0..n {
        let t_shifted = t + dt;
        if t_shifted < 0 || t_shifted >= n {
            continue;
        }
        let f = pattern[t as usize] as i64;
        let f_shifted = pattern[t_shifted as usize] as i64 + df;
        if f == f_shifted {
            count += 1;
        }
    }
    count
}

/// Largest sidelobe of the discrete ambiguity table (all (dt, df) ≠ (0, 0)).
fn max_sidelobe(pattern: &[usize]) -> usize {
    let n = pattern.len() as i64;
    let mut max = 0;
    for dt in -(n - 1)..n {
        for df in -(n - 1)..n {
            if dt == 0 && df == 0 {
                continue;
            }
            max = max.max(coincidences(pattern, dt, df));
        }
    }
    max
}

fn main() {
    let pulses: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    println!("=== Frequency-hop schedule for a {pulses}-pulse radar waveform ===\n");

    // Solve the CAP: column = time slot, value = frequency bin.
    let result = solve_costas(pulses, 7);
    let schedule = result.solution.expect("Adaptive Search finds a schedule");
    println!("Costas hop schedule (time slot -> frequency bin):");
    for (slot, freq) in schedule.iter().enumerate() {
        println!("  t={slot:>2}  f={freq}");
    }
    println!(
        "\nfound in {} iterations / {:.3} s",
        result.stats.iterations,
        result.elapsed.as_secs_f64()
    );

    // Verify the thumbtack property.
    let costas_sidelobe = max_sidelobe(&schedule);
    println!("\nAmbiguity analysis");
    println!("  Costas schedule   : worst sidelobe = {costas_sidelobe} coincidence(s)");
    assert!(
        costas_sidelobe <= 1,
        "a Costas array must have all ambiguity sidelobes at most 1"
    );

    // Compare with the naive linearly increasing hop pattern (a chirp-like ladder):
    // shifting it by (dt, df) = (1, 1) realigns almost every pulse.
    let ladder: Vec<usize> = (1..=pulses).collect();
    let ladder_sidelobe = max_sidelobe(&ladder);
    println!("  linear sweep      : worst sidelobe = {ladder_sidelobe} coincidence(s)");
    println!(
        "\nThe Costas schedule keeps every delayed/Doppler-shifted copy nearly orthogonal\n\
         to the original ({}x lower worst-case ambiguity than the linear sweep).",
        ladder_sidelobe.max(1) / costas_sidelobe.max(1)
    );
}
