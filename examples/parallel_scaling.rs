//! Parallel scaling of independent multi-walk search (a miniature of paper §V).
//!
//! ```text
//! cargo run --release --example parallel_scaling [order]
//! ```
//!
//! Runs the same CAP instance with increasing numbers of simulated cores on the
//! virtual cluster, prints the average virtual completion time per core count, the
//! observed speed-up, and the speed-up the shifted-exponential runtime model predicts
//! from the sequential runs alone.  On a long-tailed instance the observed curve
//! tracks the ideal linear speed-up — the paper's central empirical claim.

use costas_lab::prelude::*;
use costas_lab::runtime_stats::fit_shifted_exponential;

fn main() {
    let order: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);
    let runs = 10usize;
    let core_counts = [1usize, 2, 4, 8, 16, 32];
    let seed = 4242;

    println!("=== Virtual-cluster scaling for CAP {order} ({runs} runs per point) ===\n");

    let spec = WalkSpec::costas(order);
    let cluster = VirtualCluster::new(PlatformProfile::local());

    // Sequential reference sample (also feeds the exponential fit).
    let sequential: Vec<SimulatedRun> = cluster.run_exact_many(&spec, 1, runs, seed);
    let seq_iters: Vec<f64> = sequential
        .iter()
        .map(|r| r.winner_iterations as f64)
        .collect();
    let seq_stats = BatchStats::from_values(&seq_iters);
    println!(
        "sequential: mean {:.0} iterations, min {:.0}, max {:.0} (min is {:.1}x faster than mean)",
        seq_stats.mean,
        seq_stats.min,
        seq_stats.max,
        seq_stats.mean / seq_stats.min.max(1.0)
    );
    let fit = fit_shifted_exponential(&seq_iters);
    if let Some(f) = &fit {
        println!(
            "shifted-exponential fit: mu = {:.0}, lambda = {:.0} iterations\n",
            f.mu, f.lambda
        );
    }

    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}  {:>10}",
        "cores", "mean iters", "speed-up", "predicted", "ideal"
    );
    for &cores in &core_counts {
        let batch = cluster.run_exact_many(&spec, cores, runs, seed + cores as u64);
        let iters: Vec<f64> = batch.iter().map(|r| r.winner_iterations as f64).collect();
        let stats = BatchStats::from_values(&iters);
        let speedup = seq_stats.mean / stats.mean.max(1.0);
        let predicted = fit
            .as_ref()
            .map(|f| f.predicted_speedup(cores))
            .unwrap_or(f64::NAN);
        println!(
            "{cores:>6}  {:>12.0}  {:>10.2}  {:>10.2}  {:>10}",
            stats.mean, speedup, predicted, cores
        );
    }

    println!(
        "\nEvery walk is a real Adaptive Search run; the virtual clock counts iterations of\n\
         the winning walk, exactly the quantity that the min-of-K law of independent\n\
         multi-walk parallelism governs (see DESIGN.md §4)."
    );
}
