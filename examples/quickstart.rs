//! Quickstart: solve a Costas Array Problem instance three ways.
//!
//! ```text
//! cargo run --release --example quickstart [order]
//! ```
//!
//! 1. Sequential Adaptive Search with the paper's configuration (§IV).
//! 2. Independent multi-walk across several threads, first solution wins (§V).
//! 3. An algebraic construction (Welch/Golomb) when one exists for the order, as a
//!    cross-check that search and construction agree on what "Costas" means.

use costas_lab::prelude::*;

fn main() {
    let order: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);
    let seed = 2012;

    println!("=== Costas Array Problem, order {order} ===\n");

    // 1. Sequential Adaptive Search.
    let result = solve_costas(order, seed);
    let solution = result
        .solution
        .clone()
        .expect("sequential AS finds a solution");
    println!("Adaptive Search (sequential)");
    println!("  solution   : {:?}", solution);
    println!("  iterations : {}", result.stats.iterations);
    println!("  local min  : {}", result.stats.local_minima);
    println!("  resets     : {}", result.stats.resets);
    println!("  time       : {:.3} s", result.elapsed.as_secs_f64());
    assert!(is_costas_permutation(&solution));

    // Show the difference triangle of the solution, as in §IV-A of the paper.
    let array = CostasArray::try_new(solution).expect("validated above");
    println!("\n  grid:\n{}", indent(&array.to_grid_string(), 4));
    println!(
        "  difference triangle:\n{}",
        indent(&DifferenceTriangle::new(array.values()).to_string(), 4)
    );

    // 2. Independent multi-walk on real threads.
    let walks = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .max(2);
    let job = ThreadRunner::new(WalkSpec::costas(order), walks).run(seed);
    println!("Independent multi-walk ({walks} walks)");
    println!("  winner walk     : {:?}", job.winner);
    println!("  winner iterations: {:?}", job.winner_iterations());
    println!("  total iterations : {}", job.total_iterations());
    println!("  wall-clock       : {:.3} s", job.elapsed.as_secs_f64());
    assert!(job.solved());

    // 3. Algebraic construction, when available for this order.
    match costas_lab::costas::construction::any_construction(order) {
        Ok(constructed) => {
            println!("\nAlgebraic construction for order {order}: {constructed}");
            assert!(is_costas_permutation(constructed.values()));
        }
        Err(_) => {
            println!("\nNo Welch/Golomb construction exists for order {order} (search only).");
        }
    }

    if let Some(count) = costas_lab::costas::known_costas_count(order) {
        println!(
            "Published census: {count} Costas arrays of order {order} among {order}! permutations."
        );
    }
}

fn indent(text: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}
