//! Domain independence: the same Adaptive Search engine on five classical CSPs.
//!
//! ```text
//! cargo run --release --example beyond_costas
//! ```
//!
//! Adaptive Search is a *generic* constraint-based local search method (paper §III);
//! the Costas model is just one `PermutationProblem` implementation.  This example
//! runs the very same engine on the other models shipped with the library —
//! N-Queens, the All-Interval Series (CSPLib prob007), the Magic Square (CSPLib
//! prob019), Langford's problem (CSPLib prob024) and number partitioning (CSPLib
//! prob049) — and prints the solutions it finds, closing with a registry-driven
//! sweep over every workload in `adaptive_search::problems`.

use costas_lab::adaptive_search::{
    all_interval::AllIntervalProblem, langford::LangfordProblem, magic_square::MagicSquareProblem,
    partition::PartitionProblem, problems, queens::QueensProblem, AsConfig, Engine,
    PermutationProblem,
};

fn solve_and_report<P: PermutationProblem>(problem: P, label: &str, seed: u64) -> Vec<usize> {
    let config = AsConfig::builder().use_custom_reset(false).build();
    let mut engine = Engine::new(problem, config, seed);
    let result = engine.solve();
    assert!(result.is_solved(), "{label} should be solvable");
    println!(
        "{label:<22} solved in {:>8} iterations ({:>6} local minima, {:.3} s)",
        result.stats.iterations,
        result.stats.local_minima,
        result.elapsed.as_secs_f64()
    );
    result.solution.expect("solved")
}

fn main() {
    println!("=== One engine, six constraint models ===\n");

    // N-Queens, n = 64: only diagonal constraints remain under the permutation model.
    let queens = solve_and_report(QueensProblem::new(64), "N-Queens (n=64)", 1);
    assert_eq!(queens.len(), 64);

    // All-Interval Series, n = 12: the twelve-tone row problem from CSPLib.
    let series = solve_and_report(AllIntervalProblem::new(12), "All-Interval (n=12)", 2);
    let mut diffs: Vec<usize> = series.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
    diffs.sort_unstable();
    assert_eq!(
        diffs,
        (1..=11).collect::<Vec<_>>(),
        "all intervals distinct"
    );
    println!("    series    : {series:?}");
    println!(
        "    intervals : {:?}",
        series
            .windows(2)
            .map(|w| w[0].abs_diff(w[1]))
            .collect::<Vec<_>>()
    );

    // Magic Square, 4 x 4: permutation of 1..=16 with all lines summing to 34.
    let square = solve_and_report(MagicSquareProblem::new(4), "Magic Square (4x4)", 3);
    println!("    square    :");
    for row in square.chunks(4) {
        println!("      {row:?}");
    }
    for row in square.chunks(4) {
        assert_eq!(row.iter().sum::<usize>(), 34);
    }

    // Langford L(2, 8): both copies of k exactly k cells apart.
    let langford = solve_and_report(LangfordProblem::new(8), "Langford L(2,8)", 4);
    let as_numbers: Vec<usize> = langford.iter().map(|v| v.div_ceil(2)).collect();
    println!("    numbers   : {as_numbers:?}");

    // Number partitioning, n = 16: equal sums and equal square sums.
    let partition = solve_and_report(PartitionProblem::new(16), "Partition (n=16)", 5);
    let (a, b) = partition.split_at(8);
    println!("    group A   : {a:?} (Σ {})", a.iter().sum::<usize>());
    println!("    group B   : {b:?} (Σ {})", b.iter().sum::<usize>());
    assert_eq!(a.iter().sum::<usize>(), b.iter().sum::<usize>());

    // And the Costas Array Problem itself, for completeness.
    let costas = costas_lab::prelude::solve_costas(13, 4);
    println!(
        "{:<22} solved in {:>8} iterations ({:>6} local minima, {:.3} s)",
        "Costas (n=13)",
        costas.stats.iterations,
        costas.stats.local_minima,
        costas.elapsed.as_secs_f64()
    );
    println!("    array     : {:?}", costas.solution.unwrap());

    // The registry view: everything above, dispatched by key with per-model
    // metadata (default configuration, known-optimum predicate).
    println!("\n=== The same sweep, driven by the problem registry ===\n");
    for info in problems::registry() {
        let size = *info.solvable_sizes.last().unwrap();
        let mut engine = Engine::new((info.build)(size), (info.default_config)(size), 42);
        let result = engine.solve();
        let verified = result
            .solution
            .as_deref()
            .is_some_and(|s| (info.is_optimum)(s));
        println!(
            "{:<22} ({:>3} vars) solved={} verified={} in {:>8} iterations",
            info.key,
            (info.build)(size).size(),
            result.is_solved(),
            verified,
            result.stats.iterations,
        );
        assert!(
            verified,
            "{} must verify via its optimum predicate",
            info.key
        );
    }
}
