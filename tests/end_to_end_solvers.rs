//! Cross-crate integration tests: every solver in the workspace, from the public API,
//! produces verified Costas arrays, and their outputs agree with the domain crate's
//! oracles (validity check, enumeration, constructions).  The registry-level tests
//! at the bottom cover every workload of `adaptive_search::problems` — solvability
//! on known-solvable instances and bit-identical deterministic replay.

use adaptive_search::{problems, AsConfig, Engine};
use baselines::{all_solvers, solve_registry, SolverBudget};
use costas_lab::prelude::*;

#[test]
fn sequential_adaptive_search_solves_and_validates() {
    for n in [8usize, 11, 13] {
        let result = solve_costas(n, 1234 + n as u64);
        assert!(result.is_solved(), "n = {n}");
        let solution = result.solution.unwrap();
        assert!(is_costas_permutation(&solution), "n = {n}");
        // the checked constructor agrees
        let array = CostasArray::try_new(solution).unwrap();
        assert_eq!(array.order(), n);
        assert!(DifferenceTriangle::new(array.values()).is_costas());
    }
}

#[test]
fn every_baseline_solver_agrees_with_the_oracle() {
    let budget = SolverBudget::unlimited();
    for mut solver in all_solvers() {
        let result = solver.solve(10, 77, &budget);
        assert!(result.solved, "{}", solver.name());
        let solution = result.solution.expect("solved implies solution");
        assert!(is_costas_permutation(&solution), "{}", solver.name());
    }
}

#[test]
fn search_solutions_are_members_of_the_enumerated_set() {
    // For a small order the full solution set is known by enumeration; any solver
    // output must be one of them.
    let all: std::collections::HashSet<Vec<usize>> = costas_lab::costas::enumerate_costas(9)
        .into_iter()
        .map(|a| a.values().to_vec())
        .collect();
    assert_eq!(
        all.len() as u64,
        costas_lab::costas::known_costas_count(9).unwrap()
    );
    for seed in 0..5u64 {
        let result = solve_costas(9, seed);
        let solution = result.solution.unwrap();
        assert!(all.contains(&solution), "seed {seed}: {solution:?}");
    }
}

#[test]
fn constructions_and_search_produce_equally_valid_arrays() {
    // Welch order 12 and Golomb order 11 exist; the solver also finds arrays of those
    // orders, and both kinds pass the same validity oracle.
    let welch = welch_construction(12).unwrap();
    let golomb = golomb_construction(11).unwrap();
    assert!(is_costas_permutation(welch.values()));
    assert!(is_costas_permutation(golomb.values()));
    let searched = solve_costas(12, 5).solution.unwrap();
    assert!(is_costas_permutation(&searched));
}

/// Deterministic-replay regression: for every registered workload, the same seed
/// and the same registry key produce a **bit-identical** run — same status, same
/// solution, same cost trajectory endpoints, same statistics counters — across
/// two independently constructed engines.  The iteration budget is capped so the
/// property holds (and stays fast) whether or not the instance solves in time.
#[test]
fn deterministic_replay_for_every_registry_key() {
    for info in problems::registry() {
        let size = *info.solvable_sizes.last().expect("registry lists sizes");
        let config = AsConfig {
            max_iterations: 2_000,
            ..(info.default_config)(size)
        };
        let run = |seed: u64| {
            let mut engine = Engine::new((info.build)(size), config.clone(), seed);
            let result = engine.solve();
            (
                result.status,
                result.solution,
                result.final_cost,
                result.best_cost,
                result.stats,
            )
        };
        for seed in [1u64, 0xDEAD_BEEF] {
            let a = run(seed);
            let b = run(seed);
            assert_eq!(a, b, "{} (size {size}, seed {seed})", info.key);
        }
    }
}

/// Every registered workload solves its registry-declared solvable instances end
/// to end, and the claimed solutions pass the model's independent known-optimum
/// predicate.
#[test]
fn registry_workloads_solve_their_known_solvable_instances() {
    for info in problems::registry() {
        for &size in info.solvable_sizes {
            let result = solve_registry(
                info.key,
                size,
                2024 + size as u64,
                &SolverBudget::unlimited(),
            )
            .expect("registered key");
            assert!(result.solved, "{} (size {size})", info.key);
            assert!(
                (info.is_optimum)(result.solution.as_ref().unwrap()),
                "{} (size {size}): claimed solution fails the optimum predicate",
                info.key
            );
        }
    }
}

/// Determinism regression for the thread-backed multi-walk runner: the same
/// master seed and thread count reproduce the identical winning permutation and
/// identical per-walk statistics, run after run.  This is the property the
/// strong-scaling harness (`bench::scaling`) leans on — its cells are labelled
/// by `(model, threads, seed)` and must mean the same walks on every host —
/// and it only holds for `run_deterministic`: the racy `run` path elects
/// whichever solver reaches the winner mutex first.
#[test]
fn thread_runner_is_deterministic_for_fixed_seed_and_thread_count() {
    use multiwalk::{ThreadRunner, WalkSpec};
    for workers in [1usize, 2, 4] {
        let spec = WalkSpec::costas(11);
        let runner = ThreadRunner::new(spec, workers);
        let a = runner.run_deterministic(0xC057_A512);
        let b = runner.run_deterministic(0xC057_A512);
        assert!(a.solved(), "{workers} workers");
        assert_eq!(a.winner, b.winner, "{workers} workers");
        assert_eq!(a.solution, b.solution, "{workers} workers");
        assert!(is_costas_permutation(a.solution.as_ref().unwrap()));
        for (rank, (ra, rb)) in a.walk_results.iter().zip(&b.walk_results).enumerate() {
            assert_eq!(ra.status, rb.status, "{workers} workers, rank {rank}");
            assert_eq!(ra.stats, rb.stats, "{workers} workers, rank {rank}");
        }
    }
}

#[test]
fn solver_statistics_are_consistent_with_solving() {
    let result = solve_costas(14, 99);
    assert!(result.is_solved());
    assert_eq!(result.final_cost, 0);
    assert_eq!(result.best_cost, 0);
    let stats = &result.stats;
    assert!(stats.iterations > 0);
    assert!(stats.improving_moves + stats.plateau_moves <= stats.iterations);
    assert!(stats.custom_reset_escapes <= stats.custom_resets);
    assert!(stats.custom_resets <= stats.resets);
}
