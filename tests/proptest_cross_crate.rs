//! Cross-crate property tests: invariants that tie the engine, the domain crate and
//! the statistics crate together for arbitrary seeds and sizes.

use costas_lab::prelude::*;
use proptest::prelude::*;

proptest! {
    // Solving is expensive, so keep the case count low but the sizes meaningful.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whatever the seed, the sequential solver returns a permutation that the
    /// independent oracle accepts, and its reported cost is zero.
    #[test]
    fn solver_output_is_always_a_costas_array(seed in any::<u64>(), n in 6usize..=12) {
        let result = solve_costas(n, seed);
        prop_assert!(result.is_solved());
        let solution = result.solution.unwrap();
        prop_assert!(is_costas_permutation(&solution));
        prop_assert_eq!(solution.len(), n);
    }

    /// The engine is a pure function of (instance, configuration, seed).
    #[test]
    fn solver_is_deterministic_in_the_seed(seed in any::<u64>(), n in 6usize..=11) {
        let a = solve_costas(n, seed);
        let b = solve_costas(n, seed);
        prop_assert_eq!(a.solution, b.solution);
        prop_assert_eq!(a.stats.iterations, b.stats.iterations);
        prop_assert_eq!(a.stats.resets, b.stats.resets);
    }

    /// Multi-walk jobs return solutions of the requested order for any master seed
    /// and small walk count, and the winner index is in range.
    #[test]
    fn multiwalk_jobs_return_valid_winners(seed in any::<u64>(), walks in 1usize..=4) {
        let job = ThreadRunner::new(WalkSpec::costas(10), walks).run(seed);
        prop_assert!(job.solved());
        prop_assert!(job.winner.unwrap() < walks);
        prop_assert!(is_costas_permutation(job.solution.as_ref().unwrap()));
        prop_assert_eq!(job.walk_results.len(), walks);
    }

    /// The virtual cluster's exact mode never reports a winner-iteration count larger
    /// than the total work it executed, and its solution always validates.
    #[test]
    fn virtual_cluster_accounting_is_sane(seed in any::<u64>(), cores in 1usize..=6) {
        let cluster = VirtualCluster::new(PlatformProfile::local());
        let run = cluster.run_exact(&WalkSpec::costas(10), cores, seed);
        prop_assert!(run.solved());
        prop_assert!(run.winner_iterations <= run.total_iterations);
        prop_assert!(is_costas_permutation(run.solution.as_ref().unwrap()));
    }
}
