//! Cross-crate integration tests for the parallel layer: thread runner, MPI-style
//! runner and virtual cluster must agree with each other and with the sequential
//! solver on what a solution is, and the min-of-K law must show up in the virtual
//! clock.

use costas_lab::prelude::*;

#[test]
fn thread_and_mpi_runners_both_solve_and_validate() {
    let spec = WalkSpec::costas(11);

    let threaded = ThreadRunner::new(spec.clone(), 3).run(21);
    assert!(threaded.solved());
    assert!(is_costas_permutation(threaded.solution.as_ref().unwrap()));
    assert_eq!(threaded.walk_results.len(), 3);

    let mpi = MpiRunner::new(spec, 3).run(21);
    assert!(mpi.solved());
    assert!(is_costas_permutation(mpi.solution.as_ref().unwrap()));
    assert_eq!(mpi.walk_results.len(), 3);
}

#[test]
fn virtual_cluster_solution_is_a_real_costas_array() {
    let cluster = VirtualCluster::new(PlatformProfile::ha8000());
    let run = cluster.run_exact(&WalkSpec::costas(12), 8, 3);
    assert!(run.solved());
    assert!(is_costas_permutation(run.solution.as_ref().unwrap()));
    assert!(run.virtual_seconds > 0.0);
}

#[test]
fn min_of_k_law_reduces_expected_iterations() {
    // The core statistical claim behind the paper's linear speed-up, checked on the
    // virtual clock: the average winning-walk iteration count over several jobs
    // decreases (weakly) as the core count rises.
    let cluster = VirtualCluster::new(PlatformProfile::local());
    let spec = WalkSpec::costas(11);
    let runs = 8;
    let avg = |cores: usize, salt: u64| -> f64 {
        let sims = cluster.run_exact_many(&spec, cores, runs, 100 + salt);
        sims.iter().map(|r| r.winner_iterations as f64).sum::<f64>() / runs as f64
    };
    let one = avg(1, 0);
    let sixteen = avg(16, 1);
    assert!(
        sixteen <= one,
        "16 cores should not be slower on the virtual clock: {sixteen} vs {one}"
    );
}

#[test]
fn sampled_and_exact_modes_agree_on_ordering() {
    // Build an empirical sample from sequential runs, then check that the sampled
    // simulator produces completion iterations within the range of the sample and
    // decreasing in the core count.
    let driver = SequentialDriver::new(10);
    let seq = driver.run_many(12, 5);
    let samples: Vec<u64> = seq.iter().map(|r| r.stats.iterations).collect();
    let lo = *samples.iter().min().unwrap();
    let hi = *samples.iter().max().unwrap();

    let cluster = VirtualCluster::new(PlatformProfile::jugene());
    let spec = WalkSpec::costas(10);
    let few = cluster.run_sampled_many(&samples, spec.check_interval(), 2, 10, 9);
    let many = cluster.run_sampled_many(&samples, spec.check_interval(), 512, 10, 9);
    let mean = |runs: &[SimulatedRun]| {
        runs.iter().map(|r| r.winner_iterations as f64).sum::<f64>() / runs.len() as f64
    };
    assert!(mean(&many) <= mean(&few));
    for r in few.iter().chain(many.iter()) {
        // rounded up to the check interval, hence the small allowance
        assert!(r.winner_iterations + spec.check_interval() >= lo);
        assert!(r.winner_iterations <= hi + spec.check_interval());
    }
}

#[test]
fn chaotic_seeding_makes_walks_diverge() {
    // Two ranks of the same job must explore different trajectories (the §III-B3
    // requirement); identical master seeds must reproduce identical jobs.
    let spec = WalkSpec::costas(13);
    let a = spec.build_engine(5, 0).solve();
    let b = spec.build_engine(5, 1).solve();
    let a_again = spec.build_engine(5, 0).solve();
    assert_eq!(a.stats.iterations, a_again.stats.iterations);
    assert_eq!(a.solution, a_again.solution);
    assert!(
        a.stats.iterations != b.stats.iterations || a.solution != b.solution,
        "distinct ranks should not replay the same walk"
    );
}

#[test]
fn runtime_distribution_analysis_pipeline_runs_on_real_data() {
    // Sequential sample → TTT curve → exponential fit → predicted speed-up, all on
    // real solver output (small instance so the test stays fast).
    let driver = SequentialDriver::new(12);
    let results = driver.run_many(30, 11);
    let iters: Vec<f64> = results.iter().map(|r| r.stats.iterations as f64).collect();
    let ttt = TimeToTarget::from_sample("cap12", &iters);
    assert_eq!(ttt.points.len(), 30);
    if let Some(fit) = ttt.fit {
        let predicted = fit.predicted_speedup(16);
        assert!(predicted > 1.0);
        assert!(predicted <= 16.0 + 1e-9);
    }
}
