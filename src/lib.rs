//! # costas-lab — parallel local search for the Costas Array Problem
//!
//! Umbrella crate for the workspace reproducing *"Parallel local search for the Costas
//! Array Problem"* (Diaz, Richoux, Caniou, Codognet, Abreu — IPPS 2012).  It re-exports
//! the individual crates under stable names and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`costas`] | `costas` | Costas-array domain: difference triangle, validity, symmetry, Welch/Golomb constructions, enumeration, incremental conflict table |
//! | [`adaptive_search`] | `adaptive-search` | The Adaptive Search metaheuristic, the CAP model (§IV), the N-Queens / All-Interval / Magic-Square / Langford / number-partitioning models, and the string-keyed workload registry (`problems`) |
//! | [`multiwalk`] | `multiwalk` | Independent + cooperative multi-walk runners (threads, message passing) and the virtual cluster simulator (§V) |
//! | [`mpi_sim`] | `mpi-sim` | MPI-shaped in-process message passing (ranks, iprobe, collectives) |
//! | [`runtime_stats`] | `runtime-stats` | Time-to-target plots, shifted-exponential fits, speed-up models, table rendering |
//! | [`baselines`] | `baselines` | Dialectic Search, quadratic tabu search, random-restart hill climbing, complete backtracking |
//! | [`solverd`] | `solverd` | Long-running solver service: solve requests over line-delimited JSON (stdin/stdout or localhost TCP), bounded admission queue, deadline enforcement |
//! | [`xrand`] | `xrand` | Deterministic PRNGs and the chaotic-map seed generator (§III-B3) |
//!
//! ## Quickstart
//!
//! ```
//! use costas_lab::prelude::*;
//!
//! // Solve CAP 12 with the paper's sequential Adaptive Search configuration.
//! let result = solve_costas(12, 42);
//! assert!(result.is_solved());
//! let solution = result.solution.unwrap();
//! assert!(is_costas_permutation(&solution));
//!
//! // Or run an independent multi-walk job across 4 walks (first solution wins).
//! let job = ThreadRunner::new(WalkSpec::costas(12), 4).run(42);
//! assert!(job.solved());
//!
//! // Or let the walks cooperate (elite exchange + coordinated restarts) on the
//! // deterministic virtual cluster: same seed, same winning iteration count.
//! let cluster = VirtualCluster::new(PlatformProfile::local());
//! let coop = CooperativeRunner::new(WalkSpec::costas(12), 4).run_virtual(&cluster, 42);
//! assert!(coop.solved());
//! ```

pub use adaptive_search;
pub use baselines;
pub use costas;
pub use mpi_sim;
pub use multiwalk;
pub use runtime_stats;
pub use solverd;
pub use xrand;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use adaptive_search::{
        problems, solve_costas, AsConfig, CostasModelConfig, CostasProblem, DynProblem, Engine,
        PermutationProblem, ProblemInfo, SearchStats, SequentialDriver, SolveOutcome, SolveRequest,
        SolveResult, SolveStatus, Termination, TieBreak,
    };
    pub use costas::{
        golomb_construction, is_costas_permutation, welch_construction, CostasArray,
        DifferenceTriangle, Permutation,
    };
    pub use multiwalk::{
        CoopConfig, CoopResult, CooperativeRunner, MpiRunner, MultiWalkResult, PlatformProfile,
        SimulatedRun, ThreadRunner, VirtualCluster, WalkSpec,
    };
    pub use runtime_stats::{BatchStats, Series, ShiftedExponential, TimeToTarget};
    pub use xrand::{default_rng, ChaoticSeeder, RandExt, SeedSequence};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_compose() {
        let result = solve_costas(10, 7);
        assert!(result.is_solved());
        let triangle = DifferenceTriangle::new(&result.solution.unwrap());
        assert!(triangle.is_costas());
    }
}
